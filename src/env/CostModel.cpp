//===-- env/CostModel.cpp - Virtual-time performance model -----*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "env/CostModel.h"

#include <algorithm>
#include <cassert>

using namespace tsr;

void CostModel::threadStart(Tid T, Tid Parent) {
  std::lock_guard<std::mutex> L(Mu);
  if (T >= Local.size()) {
    Local.resize(T + 1, 0);
    WorkSinceOp.resize(T + 1, 0);
    EagerStalled.resize(T + 1, false);
  }
  Local[T] = Parent == InvalidTid || Parent >= Local.size()
                 ? VTime(0)
                 : Local[Parent];
}

void CostModel::work(Tid T, VTime Ns) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "work by unregistered thread");
  const VTime Cost = static_cast<VTime>(
      static_cast<double>(Ns) * Config.InstrFactor);
  WorkSinceOp[T] += Cost;
  if (Config.SequentializeAll) {
    // rr: one thread at a time — all work extends the single timeline.
    chain(T, Cost);
    return;
  }
  Local[T] += Cost;
}

void CostModel::chain(Tid T, VTime Cost) {
  if (Local[T] > GlobalChain) {
    // The thread is ahead of the chain because it waited (poll
    // deadlines, sleeps): the serialization resource was idle at its
    // time, so its operation runs at its own clock and only the busy
    // cost accrues on the chain. Without this, one idle poller would
    // drag every other thread's clock forward.
    Local[T] += Cost;
    GlobalChain += Cost;
    return;
  }
  // The thread is at or behind the chain: its operation queues behind
  // the serialized stream.
  Local[T] = GlobalChain + Cost;
  GlobalChain = Local[T];
}

void CostModel::visibleOp(Tid T, VTime ExtraCost) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "visible op by unregistered thread");
  const VTime Cost = Config.VisibleOpCost + ExtraCost;
  if (Config.ChainVisibleOps && EagerStalled[T]) {
    // An eager strategy designated this thread; the chain idled while it
    // emerged from invisible code. The stall is estimated purely in
    // virtual time — the thread's lead over the chain, limited to the
    // part earned by declared work since its last visible op (an idle
    // poller ahead of the chain via a wait deadline stalled nobody).
    // Virtual-only inputs keep recordings deterministic: sampling the
    // thread's physical parked state here would leak wall-clock timing
    // into clocks that recorded syscalls embed in the demo.
    EagerStalled[T] = false;
    const VTime Gap = Local[T] > GlobalChain ? Local[T] - GlobalChain : 0;
    const VTime Stall = std::min(Gap, WorkSinceOp[T]);
    if (Stall) {
      ++EagerStalls;
      const VTime Charge = std::min(Stall, Config.EagerStallCapNs) +
                           Config.EagerStallFixedNs;
      EagerChargedNs += Charge;
      GlobalChain += Charge;
      // Everyone waited for this thread to arrive: wall-dead time.
      for (VTime &L : Local)
        L += Charge;
    }
  }
  WorkSinceOp[T] = 0;
  if (Config.ChainVisibleOps || Config.SequentializeAll) {
    chain(T, Cost);
    return;
  }
  Local[T] += Cost;
}

void CostModel::syncAcquire(Tid T, VTime ObjTime) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "sync by unregistered thread");
  Local[T] = std::max(Local[T], ObjTime);
}

VTime CostModel::syncRelease(Tid T) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "sync by unregistered thread");
  return Local[T];
}

void CostModel::waitUntil(Tid T, VTime Until) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "wait by unregistered thread");
  Local[T] = std::max(Local[T], Until);
}

void CostModel::advance(Tid T, VTime Ns) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "advance of unregistered thread");
  Local[T] += Ns;
}

void CostModel::blockingOp(Tid T) {
  if (!Config.BlockingOpCost)
    return;
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "blockingOp by unregistered thread");
  if (Config.SequentializeAll)
    chain(T, Config.BlockingOpCost);
  else
    Local[T] += Config.BlockingOpCost;
}

void CostModel::markEagerStall(Tid T) {
  std::lock_guard<std::mutex> L(Mu);
  if (T < EagerStalled.size())
    EagerStalled[T] = true;
}

void CostModel::chainPenalty(VTime Ns) {
  std::lock_guard<std::mutex> L(Mu);
  GlobalChain += Ns;
}

VTime CostModel::localTime(Tid T) {
  std::lock_guard<std::mutex> L(Mu);
  assert(T < Local.size() && "query of unregistered thread");
  return Local[T];
}

uint64_t CostModel::eagerStallCount() {
  std::lock_guard<std::mutex> L(Mu);
  return EagerStalls;
}

uint64_t CostModel::eagerChargedNs() {
  std::lock_guard<std::mutex> L(Mu);
  return EagerChargedNs;
}

VTime CostModel::makespan() {
  std::lock_guard<std::mutex> L(Mu);
  VTime M = 0;
  for (VTime V : Local)
    M = std::max(M, V);
  return M;
}
