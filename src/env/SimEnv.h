//===-- env/SimEnv.h - Simulated OS environment -----------------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A discrete-event simulated operating system environment. This is the
/// substitution for the real external world the paper records from —
/// network peers, the clock, devices behind ioctl, files and pipes.
///
/// Genuine nondeterminism comes from an environment PRNG (wall-clock
/// seeded by default) that jitters message latencies, clock reads, device
/// responses and allocator layout hints. Recording a run therefore
/// captures information that cannot be regenerated, exactly like
/// recording a real network.
///
/// Time is virtual and per-thread: a message sent at the sender's local
/// time t arrives at t + latency; readiness of an fd is evaluated against
/// the *reading* thread's local clock, and a poll() with a timeout
/// advances the reader to the earliest arrival. Combined with the cost
/// model this yields a deterministic performance model in which
/// parallelism is visible (see CostModel.h).
///
/// Peers are scripted endpoints driven by callbacks — there are no peer
/// threads. A peer's logic runs inside the syscall that delivers data to
/// it, at the appropriate virtual time.
///
//===----------------------------------------------------------------------===//

#ifndef TSR_ENV_SIMENV_H
#define TSR_ENV_SIMENV_H

#include "env/CostModel.h"
#include "env/Syscall.h"
#include "support/Prng.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsr {

/// poll() event bits (virtual; values mirror POSIX for readability).
inline constexpr short PollIn = 0x1;
inline constexpr short PollOut = 0x4;
inline constexpr short PollHup = 0x10;

/// One entry of a virtual poll() call.
struct PollFd {
  int Fd = -1;
  short Events = 0;
  short Revents = 0;
};

/// Virtual errno values (mirroring POSIX numbers).
inline constexpr int VEBADF = 9;
inline constexpr int VEAGAIN = 11;
inline constexpr int VEINVAL = 22;
inline constexpr int VENOTCONN = 107;
inline constexpr int VEADDRINUSE = 98;
inline constexpr int VECONNREFUSED = 111;
inline constexpr int VENOENT = 2;
// Used (so far) only by injected faults (env/FaultPlan.h).
inline constexpr int VEINTR = 4;
inline constexpr int VECONNRESET = 104;

/// Transient failures worth retrying (the session's deterministic
/// retry/backoff policy, RetryPolicy): a retried EINTR/EAGAIN can
/// legitimately succeed; everything else is a stable outcome.
inline bool isTransientVirtualErrno(int Err) {
  return Err == VEINTR || Err == VEAGAIN;
}

/// ioctl request codes understood by virtual devices.
enum class IoctlReq : uint64_t {
  DisplayVsync = 1,   ///< Returns a jittered vsync timestamp (8 bytes).
  DisplayFrameDone,   ///< Returns a jittered per-frame GPU latency.
  AudioLatency,       ///< Returns the audio pipeline latency.
  QueryDriver,        ///< Returns an opaque driver blob (jittered).
};

class SimEnv;
class FaultInjector;

/// Interface a scripted peer uses to act on the world. Valid only for the
/// duration of the callback it is passed to.
class PeerApi {
public:
  virtual ~PeerApi() = default;

  /// Virtual time at which the peer is acting.
  virtual VTime now() const = 0;

  /// Sends \p Data on \p Conn towards the application; it arrives after
  /// the network latency plus \p ExtraDelay.
  virtual void send(uint64_t Conn, std::vector<uint8_t> Data,
                    VTime ExtraDelay = 0) = 0;

  /// Half-closes \p Conn from the peer side (the app sees EOF).
  virtual void close(uint64_t Conn) = 0;

  /// Initiates a connection to an application listener on \p Port,
  /// arriving at now() + latency + \p ExtraDelay. Returns the peer-side
  /// connection id (usable once the app accepts).
  virtual uint64_t connect(uint16_t Port, VTime ExtraDelay = 0) = 0;

  /// Draws from the environment PRNG.
  virtual uint64_t rand(uint64_t Bound) = 0;
};

/// A scripted external endpoint (server, client fleet, ...).
class Peer {
public:
  virtual ~Peer();

  /// Called once when the environment starts (virtual time 0); schedule
  /// initial connects here.
  virtual void onStart(PeerApi &Api);

  /// A connection this peer initiated was accepted, or an application
  /// connect() to this peer's service completed.
  virtual void onConnected(PeerApi &Api, uint64_t Conn);

  /// Data from the application arrived on \p Conn.
  virtual void onMessage(PeerApi &Api, uint64_t Conn,
                         const std::vector<uint8_t> &Data);

  /// The application closed \p Conn.
  virtual void onClosed(PeerApi &Api, uint64_t Conn);
};

/// The simulated environment. Thread-safe; every syscall takes the calling
/// thread's id so per-thread virtual time drives readiness.
class SimEnv {
public:
  struct Options {
    /// Environment PRNG seeds; defaults to wall-clock entropy (the
    /// environment is *supposed* to be nondeterministic — fix the seeds in
    /// tests that need a reproducible world).
    uint64_t Seed0 = 0;
    uint64_t Seed1 = 0;
    /// One-way network latency and jitter bounds (virtual ns); LAN
    /// scale by default.
    VTime BaseLatencyNs = 60000;
    VTime JitterNs = 40000;
    /// Pipe transfer latency.
    VTime PipeLatencyNs = 2000;
  };

  SimEnv(CostModel &Cost, Options Opts);
  explicit SimEnv(CostModel &Cost);
  ~SimEnv();

  SimEnv(const SimEnv &) = delete;
  SimEnv &operator=(const SimEnv &) = delete;

  /// Registers a scripted peer. \p ServicePort, if nonzero, lets the
  /// application connect() to this peer.
  Peer &addPeer(std::string Name, std::unique_ptr<Peer> P,
                uint16_t ServicePort = 0);

  /// Fires every peer's onStart. Called by the session when the run
  /// begins.
  void start();

  // --- Virtual syscalls -------------------------------------------------
  SyscallResult sysSocket(Tid T);
  SyscallResult sysBind(Tid T, int Fd, uint16_t Port);
  SyscallResult sysListen(Tid T, int Fd);
  SyscallResult sysAccept(Tid T, int Fd);
  SyscallResult sysConnect(Tid T, int Fd, uint16_t Port);
  SyscallResult sysSend(Tid T, int Fd, const void *Data, size_t Len);
  SyscallResult sysRecv(Tid T, int Fd, size_t MaxLen);
  SyscallResult sysPoll(Tid T, PollFd *Fds, size_t NFds, int TimeoutMs);
  SyscallResult sysIoctl(Tid T, int Fd, IoctlReq Req);
  SyscallResult sysClockGettime(Tid T);
  SyscallResult sysOpen(Tid T, const std::string &Path, bool Create);
  SyscallResult sysRead(Tid T, int Fd, size_t MaxLen);
  SyscallResult sysWrite(Tid T, int Fd, const void *Data, size_t Len);
  SyscallResult sysClose(Tid T, int Fd);
  SyscallResult sysPipe(Tid T, int OutFds[2]);
  SyscallResult sysSleepMs(Tid T, uint64_t Ms);
  SyscallResult sysAllocHint(Tid T);

  /// Classifies \p Fd for the recording policy. Unknown fds map to None.
  FdClass fdClass(int Fd);

  /// Seeds a virtual file (world setup for tests and workloads).
  void putFile(const std::string &Path, std::vector<uint8_t> Contents);

  /// Generator for a dynamic file's contents; drawn fresh at every open,
  /// with access to environment randomness.
  using DynamicFileFn = std::function<std::vector<uint8_t>(Prng &Rng)>;

  /// Registers a dynamic file (e.g. /proc/stat): each open snapshots
  /// freshly generated, environment-jittered content — the
  /// nondeterminism source behind the paper's htop discussion (§4.4).
  void putDynamicFile(const std::string &Path, DynamicFileFn Generator);

  /// Reads back a virtual file (empty if absent).
  std::vector<uint8_t> fileContents(const std::string &Path);

  /// Attaches (or detaches, with null) the session's fault injector: each
  /// peer->application message then asks it for a deliver/drop/duplicate
  /// fate. Null and disarmed injectors deliver everything.
  void setFaultInjector(FaultInjector *F) { Faults = F; }

  CostModel &cost() { return Cost; }

private:
  struct Message {
    VTime ArriveAt = 0;
    std::vector<uint8_t> Data;
  };

  struct Connection {
    int AppFd = -1;
    Peer *P = nullptr;
    uint64_t PeerConn = 0;
    std::deque<Message> ToApp;
    bool PeerClosed = false;
    bool AppClosed = false;
  };

  struct PendingConn {
    VTime ArriveAt = 0;
    Peer *P = nullptr;
    uint64_t PeerConn = 0;
  };

  struct Listener {
    uint16_t Port = 0;
    bool Listening = false;
    std::deque<PendingConn> Backlog;
  };

  struct FileHandle {
    std::string Path;
    size_t Offset = 0;
    bool Writable = false;
    /// Dynamic files snapshot their generated content at open.
    bool Dynamic = false;
    std::vector<uint8_t> Snapshot;
  };

  struct PipeState {
    std::deque<Message> Buffer;
    bool WriteClosed = false;
    bool ReadClosed = false;
  };

  struct FdEntry {
    FdClass Class = FdClass::None;
    bool Open = false;
    // Index into the table matching Class (connections, listeners,
    // files, pipes, devices). For pipes, ReadEnd tells the direction; for
    // sockets, IsConn distinguishes connections from listeners.
    size_t Index = 0;
    bool ReadEnd = false;
    bool IsConn = false;
  };

  class ApiImpl;

  int allocFd(FdClass Class, size_t Index, bool ReadEnd = false);
  FdEntry *entry(int Fd);
  VTime localNow(Tid T);
  VTime latency();
  void deliverToPeer(Connection &C, VTime At,
                     const std::vector<uint8_t> &Data);
  bool connReadable(const Connection &C, VTime Now) const;
  VTime connNextArrival(const Connection &C) const;

  CostModel &Cost;
  Options Opts;
  Prng Rng;
  FaultInjector *Faults = nullptr;
  std::mutex Mu;

  struct PeerSlot {
    std::string Name;
    std::unique_ptr<Peer> P;
    uint16_t ServicePort = 0;
  };
  std::vector<PeerSlot> Peers;

  // Object tables use deque: references must stay valid while new objects
  // are created (peer callbacks run mid-syscall).
  std::vector<FdEntry> Fds;
  std::deque<Connection> Conns;
  std::deque<Listener> Listeners;
  std::deque<FileHandle> Files;
  std::deque<std::shared_ptr<PipeState>> Pipes;
  std::deque<std::string> Devices;

  std::map<std::string, std::vector<uint8_t>> Fs;
  std::map<std::string, DynamicFileFn> DynamicFs;
  std::map<uint16_t, Listener *> PortMap;

  /// Peer-side connection registry: peer conn id -> app connection index.
  std::map<uint64_t, size_t> PeerConnMap;
  uint64_t NextPeerConn = 1;

  VTime LastClock = 0;
  uint64_t AllocCounter = 0;
  bool Started = false;
};

} // namespace tsr

#endif // TSR_ENV_SIMENV_H
