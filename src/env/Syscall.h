//===-- env/Syscall.h - Virtual syscall definitions -------------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kinds, results and recording policy for the virtual syscall layer
/// (§4.4). The paper intercepts the glibc wrappers of a demand-driven set
/// of syscalls — read, write, recvmsg, recv, sendmsg, accept, accept4,
/// clock_gettime, ioctl, select and bind — and records "the return value,
/// errno and any appropriate buffers". The sparse idea is that the set is
/// configured per application: recording too little desynchronises, while
/// recording too much triggers the snowball effect where every syscall
/// touching a recorded file descriptor must itself be recorded.
///
//===----------------------------------------------------------------------===//

#ifndef TSR_ENV_SYSCALL_H
#define TSR_ENV_SYSCALL_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tsr {

/// Virtual syscall identifiers. The first block mirrors the paper's
/// supported set; the second block covers the simulated environment's
/// additional entry points.
enum class SyscallKind : unsigned {
  Read = 0,
  Write,
  Recv,
  Send,
  RecvMsg,
  SendMsg,
  Accept,
  Accept4,
  ClockGettime,
  Ioctl,
  Select,
  Poll,
  Bind,
  // Simulated-environment extras.
  Socket,
  Listen,
  Connect,
  Open,
  Close,
  Pipe,
  SleepMs,
  /// Memory-layout hint from the allocator (§5.5): programs whose
  /// behaviour depends on pointer values consume these; the sparse
  /// presets deliberately do not record them.
  AllocHint,

  NumKinds,
};

/// Returns the lowercase name of \p Kind ("recv", "clock_gettime", ...).
const char *syscallKindName(SyscallKind Kind);

/// Classifies what a file descriptor refers to; recording decisions may
/// depend on it (§4.4: pipe reads must be recorded, file reads need not).
enum class FdClass : unsigned {
  None = 0, ///< Not fd-based (clock_gettime, alloc_hint, ...).
  File,
  Socket,
  Pipe,
  Device, ///< Display/audio devices reached through ioctl.
};

/// Uniform virtual syscall result: return value, errno, and the bytes the
/// call wrote into caller-provided buffers. This triple is exactly what
/// the SYSCALL demo stream captures per recorded call.
struct SyscallResult {
  int64_t Ret = 0;
  int Err = 0;
  std::vector<uint8_t> OutBuf;
};

/// The sparse recording policy: which syscall kinds to capture, refined by
/// fd class for the fd-based calls.
class RecordPolicy {
public:
  /// Records nothing (pure controlled scheduling).
  static RecordPolicy none();

  /// Records every kind on every fd class — the non-sparse, rr-like
  /// configuration.
  static RecordPolicy full();

  /// Preset used for the MiniHttpd case study (§5.2): network and clock
  /// calls, reads/writes on sockets and pipes, never plain files.
  static RecordPolicy httpd();

  /// Preset used for the SDL-game case studies (§5.4): like httpd, but
  /// ioctl is deliberately ignored so display-driver traffic free-runs
  /// during replay.
  static RecordPolicy game();

  /// Enables recording of \p Kind (for all fd classes).
  RecordPolicy &enable(SyscallKind Kind);
  RecordPolicy &enable(std::initializer_list<SyscallKind> Kinds);

  /// Disables recording of \p Kind.
  RecordPolicy &disable(SyscallKind Kind);

  /// Restricts Read/Write recording to sockets and pipes (the httpd
  /// refinement).
  RecordPolicy &recordFileIo(bool Record);

  /// True if a call of \p Kind on an fd of class \p Class must be
  /// recorded.
  bool shouldRecord(SyscallKind Kind, FdClass Class) const;

  /// Stable hash over the policy, stored in META so replay can detect a
  /// mismatched policy before it manifests as a confusing desync.
  uint64_t hash() const;

private:
  bool Kinds[static_cast<unsigned>(SyscallKind::NumKinds)] = {};
  bool FileIo = true;
};

} // namespace tsr

#endif // TSR_ENV_SYSCALL_H
