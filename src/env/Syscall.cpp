//===-- env/Syscall.cpp - Virtual syscall definitions -----------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "env/Syscall.h"

#include "support/Compiler.h"

using namespace tsr;

const char *tsr::syscallKindName(SyscallKind Kind) {
  switch (Kind) {
  case SyscallKind::Read:
    return "read";
  case SyscallKind::Write:
    return "write";
  case SyscallKind::Recv:
    return "recv";
  case SyscallKind::Send:
    return "send";
  case SyscallKind::RecvMsg:
    return "recvmsg";
  case SyscallKind::SendMsg:
    return "sendmsg";
  case SyscallKind::Accept:
    return "accept";
  case SyscallKind::Accept4:
    return "accept4";
  case SyscallKind::ClockGettime:
    return "clock_gettime";
  case SyscallKind::Ioctl:
    return "ioctl";
  case SyscallKind::Select:
    return "select";
  case SyscallKind::Poll:
    return "poll";
  case SyscallKind::Bind:
    return "bind";
  case SyscallKind::Socket:
    return "socket";
  case SyscallKind::Listen:
    return "listen";
  case SyscallKind::Connect:
    return "connect";
  case SyscallKind::Open:
    return "open";
  case SyscallKind::Close:
    return "close";
  case SyscallKind::Pipe:
    return "pipe";
  case SyscallKind::SleepMs:
    return "sleep_ms";
  case SyscallKind::AllocHint:
    return "alloc_hint";
  case SyscallKind::NumKinds:
    break;
  }
  TSR_UNREACHABLE("invalid SyscallKind");
}

RecordPolicy RecordPolicy::none() { return RecordPolicy(); }

RecordPolicy RecordPolicy::full() {
  RecordPolicy P;
  for (unsigned I = 0; I != static_cast<unsigned>(SyscallKind::NumKinds);
       ++I)
    P.Kinds[I] = true;
  P.FileIo = true;
  return P;
}

RecordPolicy RecordPolicy::httpd() {
  // §4.4's demand-driven set, as used for the httpd case study: network
  // traffic, the clock, poll/select readiness, plus reads and writes that
  // hit sockets or pipes. File I/O and memory layout stay unrecorded.
  RecordPolicy P;
  P.enable({SyscallKind::Read, SyscallKind::Write, SyscallKind::Recv,
            SyscallKind::Send, SyscallKind::RecvMsg, SyscallKind::SendMsg,
            SyscallKind::Accept, SyscallKind::Accept4,
            SyscallKind::ClockGettime, SyscallKind::Ioctl,
            SyscallKind::Select, SyscallKind::Poll, SyscallKind::Bind,
            SyscallKind::Socket, SyscallKind::Listen,
            SyscallKind::Connect});
  P.recordFileIo(false);
  return P;
}

RecordPolicy RecordPolicy::game() {
  // §5.4: as httpd, and explicitly *not* recording ioctl so the display
  // driver traffic is ignored while recording and re-issued natively
  // during replay.
  RecordPolicy P = httpd();
  P.disable(SyscallKind::Ioctl);
  return P;
}

RecordPolicy &RecordPolicy::enable(SyscallKind Kind) {
  Kinds[static_cast<unsigned>(Kind)] = true;
  return *this;
}

RecordPolicy &RecordPolicy::enable(std::initializer_list<SyscallKind> Ks) {
  for (SyscallKind K : Ks)
    enable(K);
  return *this;
}

RecordPolicy &RecordPolicy::disable(SyscallKind Kind) {
  Kinds[static_cast<unsigned>(Kind)] = false;
  return *this;
}

RecordPolicy &RecordPolicy::recordFileIo(bool Record) {
  FileIo = Record;
  return *this;
}

bool RecordPolicy::shouldRecord(SyscallKind Kind, FdClass Class) const {
  if (!Kinds[static_cast<unsigned>(Kind)])
    return false;
  if ((Kind == SyscallKind::Read || Kind == SyscallKind::Write) &&
      Class == FdClass::File)
    return FileIo;
  return true;
}

uint64_t RecordPolicy::hash() const {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  for (unsigned I = 0; I != static_cast<unsigned>(SyscallKind::NumKinds);
       ++I)
    Mix(Kinds[I] ? I + 1 : 0);
  Mix(FileIo ? 0xF11E : 0);
  return H;
}
