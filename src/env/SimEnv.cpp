//===-- env/SimEnv.cpp - Simulated OS environment ---------------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "env/SimEnv.h"

#include "env/FaultPlan.h"

#include "support/Compiler.h"
#include "support/Diag.h"

#include <algorithm>
#include <cstring>

using namespace tsr;

Peer::~Peer() = default;
void Peer::onStart(PeerApi &) {}
void Peer::onConnected(PeerApi &, uint64_t) {}
void Peer::onMessage(PeerApi &, uint64_t, const std::vector<uint8_t> &) {}
void Peer::onClosed(PeerApi &, uint64_t) {}

namespace {

/// Serializes a little-endian u64 into a result buffer.
void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

} // namespace

/// PeerApi implementation; constructed per callback with the interaction
/// time. SimEnv's lock is held for the whole callback.
class SimEnv::ApiImpl final : public PeerApi {
public:
  ApiImpl(SimEnv &Env, VTime Now) : Env(Env), Now_(Now) {}

  VTime now() const override { return Now_; }

  void send(uint64_t Conn, std::vector<uint8_t> Data,
            VTime ExtraDelay) override {
    auto It = Env.PeerConnMap.find(Conn);
    if (It == Env.PeerConnMap.end())
      return;
    Connection &C = Env.Conns[It->second];
    if (C.AppClosed)
      return;
    auto Fate = FaultInjector::MessageFate::Deliver;
    if (Env.Faults)
      Fate = Env.Faults->messageFate();
    if (Fate == FaultInjector::MessageFate::Drop)
      return; // Lost on the simulated wire.
    Message M;
    M.ArriveAt = Now_ + Env.latency() + ExtraDelay;
    M.Data = std::move(Data);
    // Keep the queue sorted by arrival: a later send with a shorter extra
    // delay may not overtake in-order stream transport.
    if (!C.ToApp.empty())
      M.ArriveAt = std::max(M.ArriveAt, C.ToApp.back().ArriveAt);
    if (Fate == FaultInjector::MessageFate::Duplicate) {
      Message Dup = M; // Same arrival: back-to-back duplicate delivery.
      C.ToApp.push_back(std::move(Dup));
    }
    C.ToApp.push_back(std::move(M));
  }

  void close(uint64_t Conn) override {
    auto It = Env.PeerConnMap.find(Conn);
    if (It == Env.PeerConnMap.end())
      return;
    Env.Conns[It->second].PeerClosed = true;
  }

  uint64_t connect(uint16_t Port, VTime ExtraDelay) override {
    Listener *L = nullptr;
    auto It = Env.PortMap.find(Port);
    if (It != Env.PortMap.end()) {
      L = It->second;
    } else {
      Env.Listeners.emplace_back();
      L = &Env.Listeners.back();
      L->Port = Port;
      Env.PortMap[Port] = L;
    }
    PendingConn P;
    P.ArriveAt = Now_ + Env.latency() + ExtraDelay;
    P.P = CurrentPeer;
    P.PeerConn = Env.NextPeerConn++;
    L->Backlog.push_back(P);
    return P.PeerConn;
  }

  uint64_t rand(uint64_t Bound) override { return Env.Rng.nextBelow(Bound); }

  Peer *CurrentPeer = nullptr;

private:
  SimEnv &Env;
  VTime Now_;
};

SimEnv::SimEnv(CostModel &Cost, Options Opts) : Cost(Cost), Opts(Opts) {
  if (Opts.Seed0 == 0 && Opts.Seed1 == 0) {
    const auto Seeds = Prng::freshEntropy();
    Rng.reseed(Seeds.first, Seeds.second);
  } else {
    Rng.reseed(Opts.Seed0, Opts.Seed1);
  }
  // fd 0/1/2 reserved (stdin/out/err are not simulated).
  Fds.resize(3);
}

SimEnv::SimEnv(CostModel &Cost) : SimEnv(Cost, Options()) {}

SimEnv::~SimEnv() = default;

Peer &SimEnv::addPeer(std::string Name, std::unique_ptr<Peer> P,
                      uint16_t ServicePort) {
  std::lock_guard<std::mutex> L(Mu);
  assert(!Started && "peers must be added before the environment starts");
  Peers.push_back({std::move(Name), std::move(P), ServicePort});
  return *Peers.back().P;
}

void SimEnv::start() {
  std::lock_guard<std::mutex> L(Mu);
  if (Started)
    return;
  Started = true;
  for (auto &Slot : Peers) {
    ApiImpl Api(*this, 0);
    Api.CurrentPeer = Slot.P.get();
    Slot.P->onStart(Api);
  }
}

int SimEnv::allocFd(FdClass Class, size_t Index, bool ReadEnd) {
  FdEntry E;
  E.Class = Class;
  E.Open = true;
  E.Index = Index;
  E.ReadEnd = ReadEnd;
  Fds.push_back(E);
  return static_cast<int>(Fds.size() - 1);
}

SimEnv::FdEntry *SimEnv::entry(int Fd) {
  if (Fd < 0 || static_cast<size_t>(Fd) >= Fds.size() || !Fds[Fd].Open)
    return nullptr;
  return &Fds[Fd];
}

VTime SimEnv::localNow(Tid T) { return Cost.localTime(T); }

VTime SimEnv::latency() {
  return Opts.BaseLatencyNs +
         (Opts.JitterNs ? Rng.nextBelow(Opts.JitterNs) : 0);
}

SyscallResult SimEnv::sysSocket(Tid) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  Listeners.emplace_back();
  R.Ret = allocFd(FdClass::Socket, Listeners.size() - 1);
  return R;
}

SyscallResult SimEnv::sysBind(Tid, int Fd, uint16_t Port) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  auto It = PortMap.find(Port);
  if (It != PortMap.end() && It->second->Listening) {
    R.Ret = -1;
    R.Err = VEADDRINUSE;
    return R;
  }
  Listener &Self = Listeners[E->Index];
  Self.Port = Port;
  if (It != PortMap.end()) {
    // A peer raced us: adopt the backlog accumulated for this port.
    Self.Backlog = std::move(It->second->Backlog);
    It->second->Backlog.clear();
  }
  PortMap[Port] = &Self;
  return R;
}

SyscallResult SimEnv::sysListen(Tid, int Fd) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  Listeners[E->Index].Listening = true;
  return R;
}

SyscallResult SimEnv::sysAccept(Tid T, int Fd) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  Listener &Lst = Listeners[E->Index];
  const VTime Now = localNow(T);
  if (Lst.Backlog.empty() || Lst.Backlog.front().ArriveAt > Now) {
    R.Ret = -1;
    R.Err = VEAGAIN;
    return R;
  }
  PendingConn P = Lst.Backlog.front();
  Lst.Backlog.pop_front();
  Conns.emplace_back();
  Connection &C = Conns.back();
  const size_t ConnIdx = Conns.size() - 1;
  C.P = P.P;
  C.PeerConn = P.PeerConn;
  C.AppFd = allocFd(FdClass::Socket, ConnIdx);
  Fds[C.AppFd].IsConn = true;
  PeerConnMap[P.PeerConn] = ConnIdx;
  if (C.P) {
    ApiImpl Api(*this, std::max(Now, P.ArriveAt));
    Api.CurrentPeer = C.P;
    C.P->onConnected(Api, C.PeerConn);
  }
  R.Ret = C.AppFd;
  return R;
}

SyscallResult SimEnv::sysConnect(Tid T, int Fd, uint16_t Port) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  // Find the peer exposing this service port.
  Peer *Target = nullptr;
  for (auto &Slot : Peers)
    if (Slot.ServicePort == Port) {
      Target = Slot.P.get();
      break;
    }
  if (!Target) {
    R.Ret = -1;
    R.Err = VECONNREFUSED;
    return R;
  }
  Conns.emplace_back();
  Connection &C = Conns.back();
  const size_t ConnIdx = Conns.size() - 1;
  C.P = Target;
  C.PeerConn = NextPeerConn++;
  C.AppFd = Fd;
  // The connecting fd becomes the connection fd.
  E->Index = ConnIdx;
  E->IsConn = true;
  PeerConnMap[C.PeerConn] = ConnIdx;
  ApiImpl Api(*this, localNow(T) + latency());
  Api.CurrentPeer = Target;
  Target->onConnected(Api, C.PeerConn);
  return R;
}

void SimEnv::deliverToPeer(Connection &C, VTime At,
                           const std::vector<uint8_t> &Data) {
  if (!C.P)
    return;
  ApiImpl Api(*this, At);
  Api.CurrentPeer = C.P;
  C.P->onMessage(Api, C.PeerConn, Data);
}

bool SimEnv::connReadable(const Connection &C, VTime Now) const {
  if (!C.ToApp.empty() && C.ToApp.front().ArriveAt <= Now)
    return true;
  return C.PeerClosed && C.ToApp.empty();
}

VTime SimEnv::connNextArrival(const Connection &C) const {
  return C.ToApp.empty() ? ~VTime(0) : C.ToApp.front().ArriveAt;
}

SyscallResult SimEnv::sysSend(Tid T, int Fd, const void *Data, size_t Len) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket || !E->IsConn) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  Connection &C = Conns[E->Index];
  if (C.PeerClosed) {
    R.Ret = -1;
    R.Err = VENOTCONN;
    return R;
  }
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  deliverToPeer(C, localNow(T) + latency(),
                std::vector<uint8_t>(P, P + Len));
  R.Ret = static_cast<int64_t>(Len);
  return R;
}

SyscallResult SimEnv::sysRecv(Tid T, int Fd, size_t MaxLen) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Socket || !E->IsConn) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  Connection &C = Conns[E->Index];
  const VTime Now = localNow(T);
  if (C.ToApp.empty() || C.ToApp.front().ArriveAt > Now) {
    if (C.PeerClosed && C.ToApp.empty()) {
      R.Ret = 0; // EOF
      return R;
    }
    R.Ret = -1;
    R.Err = VEAGAIN;
    return R;
  }
  Message &M = C.ToApp.front();
  const size_t N = std::min(MaxLen, M.Data.size());
  R.OutBuf.assign(M.Data.begin(), M.Data.begin() + N);
  if (N == M.Data.size()) {
    C.ToApp.pop_front();
  } else {
    M.Data.erase(M.Data.begin(), M.Data.begin() + N);
  }
  R.Ret = static_cast<int64_t>(N);
  return R;
}

SyscallResult SimEnv::sysPoll(Tid T, PollFd *Fds_, size_t NFds,
                              int TimeoutMs) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;

  auto Evaluate = [&](VTime Now, VTime &NextArrival) -> int {
    int Ready = 0;
    NextArrival = ~VTime(0);
    for (size_t I = 0; I != NFds; ++I) {
      PollFd &P = Fds_[I];
      P.Revents = 0;
      FdEntry *E = entry(P.Fd);
      if (!E)
        continue;
      bool In = false, Hup = false;
      VTime Arrival = ~VTime(0);
      switch (E->Class) {
      case FdClass::Socket: {
        // Listener sockets signal readiness for accept; connection
        // sockets for data or EOF.
        if (E->IsConn) {
          const Connection &C = Conns[E->Index];
          In = connReadable(C, Now);
          Hup = C.PeerClosed;
          Arrival = connNextArrival(C);
        } else if (E->Index < Listeners.size()) {
          const Listener &Lst = Listeners[E->Index];
          if (!Lst.Backlog.empty()) {
            In = Lst.Backlog.front().ArriveAt <= Now;
            Arrival = Lst.Backlog.front().ArriveAt;
          }
        }
        break;
      }
      case FdClass::Pipe: {
        const auto &Pipe = Pipes[E->Index];
        if (E->ReadEnd) {
          if (!Pipe->Buffer.empty()) {
            In = Pipe->Buffer.front().ArriveAt <= Now;
            Arrival = Pipe->Buffer.front().ArriveAt;
          }
          Hup = Pipe->WriteClosed && Pipe->Buffer.empty();
          In = In || Hup;
        }
        break;
      }
      case FdClass::File:
      case FdClass::Device:
        In = true; // Always ready.
        break;
      case FdClass::None:
        break;
      }
      if (In && (P.Events & PollIn))
        P.Revents |= PollIn;
      if (P.Events & PollOut)
        P.Revents |= PollOut; // Writes never block in the simulation.
      if (Hup)
        P.Revents |= PollHup;
      if (P.Revents)
        ++Ready;
      else
        NextArrival = std::min(NextArrival, Arrival);
    }
    return Ready;
  };

  VTime Now = localNow(T);
  VTime NextArrival;
  int Ready = Evaluate(Now, NextArrival);
  if (Ready == 0 && TimeoutMs != 0) {
    const VTime Deadline =
        TimeoutMs < 0 ? ~VTime(0)
                      : Now + static_cast<VTime>(TimeoutMs) * 1000000;
    if (NextArrival <= Deadline) {
      Cost.waitUntil(T, NextArrival);
      Now = NextArrival;
      Ready = Evaluate(Now, NextArrival);
    } else if (TimeoutMs > 0) {
      Cost.waitUntil(T, Deadline);
    }
    // Infinite timeout with no future arrival: return 0 and let the
    // caller's loop decide; a real blocking poll with nothing coming
    // would hang forever.
  }
  // Result buffer: revents per entry, two bytes little-endian.
  for (size_t I = 0; I != NFds; ++I) {
    R.OutBuf.push_back(static_cast<uint8_t>(Fds_[I].Revents & 0xFF));
    R.OutBuf.push_back(static_cast<uint8_t>((Fds_[I].Revents >> 8) & 0xFF));
  }
  R.Ret = Ready;
  return R;
}

SyscallResult SimEnv::sysIoctl(Tid T, int Fd, IoctlReq Req) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E || E->Class != FdClass::Device) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  const VTime Now = localNow(T);
  switch (Req) {
  case IoctlReq::DisplayVsync:
    putU64(R.OutBuf, Now + 16666667 - (Now % 16666667) + Rng.nextBelow(5000));
    break;
  case IoctlReq::DisplayFrameDone:
    putU64(R.OutBuf, 1000000000 / 60 + Rng.nextBelow(2000000));
    break;
  case IoctlReq::AudioLatency:
    putU64(R.OutBuf, 5000000 + Rng.nextBelow(1000000));
    break;
  case IoctlReq::QueryDriver:
    for (int I = 0; I != 16; ++I)
      R.OutBuf.push_back(static_cast<uint8_t>(Rng.nextBelow(256)));
    break;
  }
  return R;
}

SyscallResult SimEnv::sysClockGettime(Tid T) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  // Monotone, shared, jittered: two threads racing on the clock observe
  // environment nondeterminism, which is why clock_gettime is in the
  // paper's recorded set.
  const VTime V =
      std::max(LastClock + 1, localNow(T) + Rng.nextBelow(1000));
  LastClock = V;
  putU64(R.OutBuf, V);
  return R;
}

SyscallResult SimEnv::sysOpen(Tid, const std::string &Path, bool Create) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  if (Path.rfind("/dev/", 0) == 0) {
    Devices.push_back(Path);
    R.Ret = allocFd(FdClass::Device, Devices.size() - 1);
    return R;
  }
  if (auto It = DynamicFs.find(Path); It != DynamicFs.end()) {
    // /proc-style file: snapshot fresh, jittered content at open.
    Files.push_back({Path, 0, false, true, It->second(Rng)});
    R.Ret = allocFd(FdClass::File, Files.size() - 1);
    return R;
  }
  if (!Fs.count(Path)) {
    if (!Create) {
      R.Ret = -1;
      R.Err = VENOENT;
      return R;
    }
    Fs[Path] = {};
  }
  Files.push_back({Path, 0, Create, false, {}});
  R.Ret = allocFd(FdClass::File, Files.size() - 1);
  return R;
}

SyscallResult SimEnv::sysRead(Tid T, int Fd, size_t MaxLen) {
  {
    // POSIX read on a connected socket behaves like recv.
    std::unique_lock<std::mutex> L(Mu);
    FdEntry *E = entry(Fd);
    if (E && E->Class == FdClass::Socket && E->IsConn) {
      L.unlock();
      return sysRecv(T, Fd, MaxLen);
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  if (E->Class == FdClass::File) {
    FileHandle &F = Files[E->Index];
    const auto &Data = F.Dynamic ? F.Snapshot : Fs[F.Path];
    const size_t N =
        F.Offset >= Data.size() ? 0 : std::min(MaxLen, Data.size() - F.Offset);
    R.OutBuf.assign(Data.begin() + F.Offset, Data.begin() + F.Offset + N);
    F.Offset += N;
    R.Ret = static_cast<int64_t>(N);
    return R;
  }
  if (E->Class == FdClass::Pipe && E->ReadEnd) {
    auto &P = Pipes[E->Index];
    const VTime Now = localNow(T);
    if (P->Buffer.empty() || P->Buffer.front().ArriveAt > Now) {
      if (P->WriteClosed && P->Buffer.empty()) {
        R.Ret = 0;
        return R;
      }
      R.Ret = -1;
      R.Err = VEAGAIN;
      return R;
    }
    Message &M = P->Buffer.front();
    const size_t N = std::min(MaxLen, M.Data.size());
    R.OutBuf.assign(M.Data.begin(), M.Data.begin() + N);
    if (N == M.Data.size())
      P->Buffer.pop_front();
    else
      M.Data.erase(M.Data.begin(), M.Data.begin() + N);
    R.Ret = static_cast<int64_t>(N);
    return R;
  }
  R.Ret = -1;
  R.Err = VEBADF;
  return R;
}

SyscallResult SimEnv::sysWrite(Tid T, int Fd, const void *Data, size_t Len) {
  {
    // POSIX write on a connected socket behaves like send.
    std::unique_lock<std::mutex> L(Mu);
    FdEntry *E = entry(Fd);
    if (E && E->Class == FdClass::Socket && E->IsConn) {
      L.unlock();
      return sysSend(T, Fd, Data, Len);
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  if (E->Class == FdClass::File) {
    FileHandle &F = Files[E->Index];
    if (!F.Writable) {
      R.Ret = -1;
      R.Err = VEINVAL;
      return R;
    }
    auto &Bytes = Fs[F.Path];
    if (F.Offset + Len > Bytes.size())
      Bytes.resize(F.Offset + Len);
    std::memcpy(Bytes.data() + F.Offset, P, Len);
    F.Offset += Len;
    R.Ret = static_cast<int64_t>(Len);
    return R;
  }
  if (E->Class == FdClass::Pipe && !E->ReadEnd) {
    auto &Pipe = Pipes[E->Index];
    if (Pipe->ReadClosed) {
      R.Ret = -1;
      R.Err = VENOTCONN;
      return R;
    }
    Message M;
    M.ArriveAt = localNow(T) + Opts.PipeLatencyNs;
    if (!Pipe->Buffer.empty())
      M.ArriveAt = std::max(M.ArriveAt, Pipe->Buffer.back().ArriveAt);
    M.Data.assign(P, P + Len);
    Pipe->Buffer.push_back(std::move(M));
    R.Ret = static_cast<int64_t>(Len);
    return R;
  }
  R.Ret = -1;
  R.Err = VEBADF;
  return R;
}

SyscallResult SimEnv::sysClose(Tid T, int Fd) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  FdEntry *E = entry(Fd);
  if (!E) {
    R.Ret = -1;
    R.Err = VEBADF;
    return R;
  }
  E->Open = false;
  if (E->Class == FdClass::Socket && E->IsConn) {
    Connection &C = Conns[E->Index];
    C.AppClosed = true;
    if (C.P) {
      ApiImpl Api(*this, localNow(T) + latency());
      Api.CurrentPeer = C.P;
      C.P->onClosed(Api, C.PeerConn);
    }
  } else if (E->Class == FdClass::Pipe) {
    auto &P = Pipes[E->Index];
    if (E->ReadEnd)
      P->ReadClosed = true;
    else
      P->WriteClosed = true;
  }
  return R;
}

SyscallResult SimEnv::sysPipe(Tid, int OutFds[2]) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  Pipes.push_back(std::make_shared<PipeState>());
  const size_t Idx = Pipes.size() - 1;
  OutFds[0] = allocFd(FdClass::Pipe, Idx, /*ReadEnd=*/true);
  OutFds[1] = allocFd(FdClass::Pipe, Idx, /*ReadEnd=*/false);
  // The fd pair is part of the observable result.
  putU64(R.OutBuf, static_cast<uint64_t>(OutFds[0]));
  putU64(R.OutBuf, static_cast<uint64_t>(OutFds[1]));
  return R;
}

SyscallResult SimEnv::sysSleepMs(Tid T, uint64_t Ms) {
  SyscallResult R;
  Cost.waitUntil(T, Cost.localTime(T) + Ms * 1000000);
  return R;
}

SyscallResult SimEnv::sysAllocHint(Tid) {
  std::lock_guard<std::mutex> L(Mu);
  SyscallResult R;
  // A pseudo heap address: allocation order plus environment jitter, so
  // pointer-ordered containers behave differently run to run (§5.5).
  const uint64_t Addr = 0x7f0000000000ull + (++AllocCounter) * 64 +
                        Rng.nextBelow(4) * 16;
  putU64(R.OutBuf, Addr);
  R.Ret = static_cast<int64_t>(Addr);
  return R;
}

FdClass SimEnv::fdClass(int Fd) {
  std::lock_guard<std::mutex> L(Mu);
  FdEntry *E = entry(Fd);
  return E ? E->Class : FdClass::None;
}

void SimEnv::putFile(const std::string &Path, std::vector<uint8_t> Contents) {
  std::lock_guard<std::mutex> L(Mu);
  Fs[Path] = std::move(Contents);
}

void SimEnv::putDynamicFile(const std::string &Path,
                            DynamicFileFn Generator) {
  std::lock_guard<std::mutex> L(Mu);
  DynamicFs[Path] = std::move(Generator);
}

std::vector<uint8_t> SimEnv::fileContents(const std::string &Path) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Fs.find(Path);
  return It == Fs.end() ? std::vector<uint8_t>() : It->second;
}
