//===-- env/FaultPlan.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the virtual syscall layer.
///
/// The paper's robustness argument rests on the environment being *hostile*:
/// sockets reset, reads come up short, the kernel says EAGAIN at the worst
/// possible moment. A FaultPlan describes such hostility declaratively —
/// per-kind/per-fd-class failure probabilities, scripted triggers ("fail
/// the 3rd recv on a socket with VECONNRESET"), short transfers, and
/// peer-message drop/duplication — and a FaultInjector executes it from a
/// dedicated PRNG seeded with the same two words the demo META records.
///
/// The injector sits *before* the record/replay split in
/// Session::doSyscall: a faulted result is recorded into the SYSCALL
/// stream exactly like a genuine one, so a demo captured under injection
/// replays the faults bit-for-bit with the injector disarmed. During
/// replay the injector is never armed — injecting again would double-fault
/// a stream that already contains the failures.
///
/// All injector entry points run inside the session's critical section
/// (syscalls and peer callbacks are serialized by the scheduler protocol),
/// so the injector needs no locking and its PRNG draw sequence is
/// deterministic for a fixed schedule.
///
//===----------------------------------------------------------------------===//

#ifndef TSR_ENV_FAULTPLAN_H
#define TSR_ENV_FAULTPLAN_H

#include "env/Syscall.h"
#include "support/Prng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tsr {

/// A declarative description of the faults to inject into one run.
/// Builder-style: chain the configuration calls, then hand the plan to
/// SessionConfig::Faults.
class FaultPlan {
public:
  /// Probabilistic errno fault: each matching call fails with \p Err with
  /// probability \p Probability, without touching the environment.
  struct ErrnoRule {
    SyscallKind Kind = SyscallKind::Read;
    FdClass Class = FdClass::None;
    bool AnyClass = true; ///< Match every fd class (Class ignored).
    int Err = 0;
    double Probability = 0.0;
  };

  /// Scripted errno fault: the occurrences [Nth, Nth + Count) of a
  /// matching call fail with \p Err. Occurrences are counted per rule,
  /// 1-based, over the whole run.
  struct ScriptedRule {
    SyscallKind Kind = SyscallKind::Read;
    FdClass Class = FdClass::None;
    bool AnyClass = true;
    uint64_t Nth = 1;
    uint64_t Count = 1;
    int Err = 0;
  };

  /// A plan that injects nothing (the default).
  static FaultPlan none();

  /// Parses a declarative fault-plan specification, the form a harness
  /// passes through an environment variable:
  ///
  ///   spec   := clause (';' clause)*
  ///   clause := knob '=' prob
  ///           | 'fail:' kind ['@' class] ':' 'p=' prob ',' 'errno=' err
  ///           | 'nth:' kind ['@' class] ':' 'n=' n [',' 'count=' c]
  ///                    ',' 'errno=' err
  ///   knob   := 'shortreads' | 'shortwrites' | 'drop' | 'dup'
  ///   kind   := a syscall name ("read", "recv", "clock_gettime", ...)
  ///   class  := 'file' | 'socket' | 'pipe' | 'device'
  ///   err    := a symbolic virtual errno ("EAGAIN", "EINTR",
  ///             "ECONNRESET", ...)
  ///
  /// Example: "shortreads=0.1;fail:recv@socket:p=0.05,errno=ECONNRESET;
  /// nth:read@pipe:n=3,count=2,errno=EINTR". An empty spec parses to an
  /// inactive plan. On success fills \p Out and returns true; otherwise
  /// returns false with \p Error naming the offending clause and leaves
  /// \p Out untouched.
  static bool parse(const std::string &Spec, FaultPlan &Out,
                    std::string &Error);

  /// Fails calls of \p Kind (any fd class) with \p Err at \p Probability.
  FaultPlan &failWith(SyscallKind Kind, int Err, double Probability);

  /// As failWith, restricted to fds of \p Class.
  FaultPlan &failWithOn(SyscallKind Kind, FdClass Class, int Err,
                        double Probability);

  /// Fails exactly the \p Nth call of \p Kind with \p Err ("fail the 3rd
  /// recv with VECONNRESET").
  FaultPlan &failNth(SyscallKind Kind, uint64_t Nth, int Err);

  /// As failNth, restricted to fds of \p Class.
  FaultPlan &failNthOn(SyscallKind Kind, FdClass Class, uint64_t Nth,
                       int Err);

  /// Scripted storm: occurrences [Nth, Nth + Count) of \p Kind all fail
  /// with \p Err — e.g. a VEAGAIN storm that forces the application
  /// through its retry loop \p Count times in a row.
  FaultPlan &storm(SyscallKind Kind, uint64_t Nth, uint64_t Count, int Err);

  /// Truncates successful reads (read/recv/recvmsg) to a random shorter
  /// length with probability \p Probability. The simulated tail is
  /// dropped, modelling a partial delivery.
  FaultPlan &shortReads(double Probability);

  /// Shortens the reported length of successful writes (write/send/
  /// sendmsg) with probability \p Probability. The environment still
  /// receives the full payload; only the application's view shrinks —
  /// enough to exercise partial-write handling deterministically.
  FaultPlan &shortWrites(double Probability);

  /// Silently discards peer->application messages with \p Probability.
  FaultPlan &dropPeerMessages(double Probability);

  /// Enqueues peer->application messages twice with \p Probability.
  FaultPlan &duplicatePeerMessages(double Probability);

  /// True when any rule or probability is set.
  bool active() const;

  /// Stable hash over the whole plan; stored in the demo META stream so
  /// tools can see that (and under which plan) a demo was recorded with
  /// injection. Zero for an inactive plan.
  uint64_t hash() const;

  const std::vector<ErrnoRule> &errnoRules() const { return Errnos; }
  const std::vector<ScriptedRule> &scriptedRules() const { return Scripted; }
  double shortReadProbability() const { return ShortReadP; }
  double shortWriteProbability() const { return ShortWriteP; }
  double dropProbability() const { return DropP; }
  double duplicateProbability() const { return DuplicateP; }

private:
  std::vector<ErrnoRule> Errnos;
  std::vector<ScriptedRule> Scripted;
  double ShortReadP = 0.0;
  double ShortWriteP = 0.0;
  double DropP = 0.0;
  double DuplicateP = 0.0;
};

/// Executes a FaultPlan. Owned by the Session; armed (outside replay) with
/// the seeds that go into META, consulted by Session::doSyscall around
/// every native issue and by SimEnv for each peer message.
class FaultInjector {
public:
  /// What happened to the run, for RunReport.
  struct Counters {
    uint64_t ErrnosInjected = 0;   ///< Calls failed outright.
    uint64_t ShortTransfers = 0;   ///< Reads/writes truncated.
    uint64_t MessagesDropped = 0;  ///< Peer messages discarded.
    uint64_t MessagesDuplicated = 0;

    uint64_t total() const {
      return ErrnosInjected + ShortTransfers + MessagesDropped +
             MessagesDuplicated;
    }
  };

  /// Fate of one peer->application message.
  enum class MessageFate { Deliver, Drop, Duplicate };

  /// Arms the injector. \p Seed0/\p Seed1 are the session's META seeds;
  /// the injector derives its own stream from them so scheduler draws and
  /// fault draws stay independent.
  void arm(const FaultPlan &Plan, uint64_t Seed0, uint64_t Seed1);

  /// True when armed with an active plan.
  bool enabled() const { return Armed && Plan.active(); }

  /// Consulted before the environment executes a call. Returns true when
  /// the call must fail without running: \p R is filled with ret -1 and
  /// the injected errno.
  bool preIssue(SyscallKind Kind, FdClass Class, SyscallResult &R);

  /// Consulted after a successful native issue; may shorten the result
  /// (short reads / short writes).
  void postIssue(SyscallKind Kind, FdClass Class, SyscallResult &R);

  /// Decides the fate of one peer->application message.
  MessageFate messageFate();

  const Counters &counters() const { return Stats; }

private:
  bool chance(double P);

  FaultPlan Plan;
  Prng Rng;
  bool Armed = false;
  /// Per-ScriptedRule occurrence counters (parallel to scriptedRules()).
  std::vector<uint64_t> ScriptedSeen;
  Counters Stats;
};

} // namespace tsr

#endif // TSR_ENV_FAULTPLAN_H
