//===-- env/FaultPlan.cpp - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "env/FaultPlan.h"

#include "env/SimEnv.h"
#include "support/Diag.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <utility>

using namespace tsr;

FaultPlan FaultPlan::none() { return FaultPlan(); }

namespace {

/// Symbolic names for the virtual errno constants (env/SimEnv.h) accepted
/// by FaultPlan::parse.
struct ErrnoName {
  const char *Name;
  int Value;
};
constexpr ErrnoName ErrnoNames[] = {
    {"EAGAIN", VEAGAIN},           {"EINTR", VEINTR},
    {"ECONNRESET", VECONNRESET},   {"EBADF", VEBADF},
    {"EINVAL", VEINVAL},           {"ENOTCONN", VENOTCONN},
    {"EADDRINUSE", VEADDRINUSE},   {"ECONNREFUSED", VECONNREFUSED},
    {"ENOENT", VENOENT},
};

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  size_t E = S.find_last_not_of(" \t");
  return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
}

bool parseErrno(const std::string &Name, int &Out) {
  for (const ErrnoName &E : ErrnoNames)
    if (Name == E.Name) {
      Out = E.Value;
      return true;
    }
  return false;
}

bool parseKind(const std::string &Name, SyscallKind &Out) {
  for (unsigned I = 0; I != static_cast<unsigned>(SyscallKind::NumKinds);
       ++I)
    if (Name == syscallKindName(static_cast<SyscallKind>(I))) {
      Out = static_cast<SyscallKind>(I);
      return true;
    }
  return false;
}

bool parseClass(const std::string &Name, FdClass &Out) {
  if (Name == "file")
    Out = FdClass::File;
  else if (Name == "socket")
    Out = FdClass::Socket;
  else if (Name == "pipe")
    Out = FdClass::Pipe;
  else if (Name == "device")
    Out = FdClass::Device;
  else
    return false;
  return true;
}

bool parseProbability(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End == S.c_str() + S.size() && Out >= 0.0 && Out <= 1.0;
}

bool parseCount(const std::string &S, uint64_t &Out) {
  // A count starts with a digit, full stop: strtoull itself would skip
  // leading whitespace and accept a sign — "-5" parses as 2^64-5 without
  // even setting errno.
  if (S.empty() || S[0] < '0' || S[0] > '9')
    return false;
  // strtoull reports overflow through errno alone (returning ULLONG_MAX,
  // a value the caller cannot distinguish from a legitimate count), so
  // errno must be cleared first and checked after — otherwise a stale
  // ERANGE hides, or an out-of-range count silently saturates.
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(S.c_str(), &End, 10);
  if (errno == ERANGE)
    return false;
  return End == S.c_str() + S.size();
}

/// Splits "kind[@class]" between the clause verb and its key list.
bool parseTarget(const std::string &S, SyscallKind &Kind, FdClass &Class,
                 bool &AnyClass, std::string &Why) {
  const size_t At = S.find('@');
  const std::string KindName = S.substr(0, At);
  if (!parseKind(KindName, Kind)) {
    Why = "unknown syscall kind '" + KindName + "'";
    return false;
  }
  AnyClass = At == std::string::npos;
  if (!AnyClass) {
    const std::string ClassName = S.substr(At + 1);
    if (!parseClass(ClassName, Class)) {
      Why = "unknown fd class '" + ClassName + "'";
      return false;
    }
  }
  return true;
}

/// Splits "k1=v1,k2=v2" into pairs, rejecting malformed or duplicate
/// keys.
bool parseKeyValues(const std::string &S,
                    std::vector<std::pair<std::string, std::string>> &Out,
                    std::string &Why) {
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    const std::string Pair = trimmed(S.substr(Pos, Comma - Pos));
    const size_t Eq = Pair.find('=');
    if (Pair.empty() || Eq == std::string::npos || Eq == 0) {
      Why = "expected key=value, got '" + Pair + "'";
      return false;
    }
    const std::string Key = Pair.substr(0, Eq);
    for (const auto &Existing : Out)
      if (Existing.first == Key) {
        Why = "duplicate key '" + Key + "'";
        return false;
      }
    Out.emplace_back(Key, Pair.substr(Eq + 1));
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out,
                      std::string &Error) {
  FaultPlan P;
  bool SawShortReads = false, SawShortWrites = false, SawDrop = false,
       SawDup = false;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    if (Semi == std::string::npos)
      Semi = Spec.size();
    const std::string Clause = trimmed(Spec.substr(Pos, Semi - Pos));
    Pos = Semi + 1;
    if (Clause.empty())
      continue;
    auto Fail = [&](const std::string &Why) {
      Error = formatString("fault plan: clause '%s': %s", Clause.c_str(),
                           Why.c_str());
      return false;
    };

    if (Clause.compare(0, 5, "fail:") == 0 ||
        Clause.compare(0, 4, "nth:") == 0) {
      const bool Scripted = Clause[0] == 'n';
      const size_t VerbEnd = Clause.find(':') + 1;
      const size_t TargetEnd = Clause.find(':', VerbEnd);
      if (TargetEnd == std::string::npos)
        return Fail("expected '<kind>[@<class>]:' after the verb");
      SyscallKind Kind;
      FdClass Class = FdClass::None;
      bool AnyClass;
      std::string Why;
      if (!parseTarget(Clause.substr(VerbEnd, TargetEnd - VerbEnd), Kind,
                       Class, AnyClass, Why))
        return Fail(Why);
      std::vector<std::pair<std::string, std::string>> KVs;
      if (!parseKeyValues(Clause.substr(TargetEnd + 1), KVs, Why))
        return Fail(Why);

      double Prob = -1.0;
      uint64_t Nth = 0, Count = 1;
      int Err = 0;
      bool SawErr = false, SawCount = false;
      for (const auto &[Key, Value] : KVs) {
        if (Key == "errno") {
          if (!parseErrno(Value, Err))
            return Fail("unknown errno '" + Value + "'");
          SawErr = true;
        } else if (!Scripted && Key == "p") {
          if (!parseProbability(Value, Prob))
            return Fail("probability must be a number in [0, 1], got '" +
                        Value + "'");
        } else if (Scripted && Key == "n") {
          if (!parseCount(Value, Nth) || Nth == 0)
            return Fail("'n' must be a positive integer, got '" + Value +
                        "'");
        } else if (Scripted && Key == "count") {
          if (!parseCount(Value, Count) || Count == 0)
            return Fail("'count' must be a positive integer, got '" +
                        Value + "'");
          SawCount = true;
        } else {
          return Fail("unknown key '" + Key + "'");
        }
      }
      (void)SawCount;
      if (!SawErr)
        return Fail("missing required key 'errno'");
      if (!Scripted && Prob < 0.0)
        return Fail("missing required key 'p'");
      if (Scripted && Nth == 0)
        return Fail("missing required key 'n'");

      if (Scripted) {
        ScriptedRule R;
        R.Kind = Kind;
        R.Class = Class;
        R.AnyClass = AnyClass;
        R.Nth = Nth;
        R.Count = Count;
        R.Err = Err;
        P.Scripted.push_back(R);
      } else {
        ErrnoRule R;
        R.Kind = Kind;
        R.Class = Class;
        R.AnyClass = AnyClass;
        R.Err = Err;
        R.Probability = Prob;
        P.Errnos.push_back(R);
      }
      continue;
    }

    const size_t Eq = Clause.find('=');
    if (Eq == std::string::npos)
      return Fail("expected '<knob>=<probability>', 'fail:...' or "
                  "'nth:...'");
    const std::string Knob = trimmed(Clause.substr(0, Eq));
    const std::string Value = trimmed(Clause.substr(Eq + 1));
    double Prob;
    if (!parseProbability(Value, Prob))
      return Fail("probability must be a number in [0, 1], got '" + Value +
                  "'");
    bool *Seen = nullptr;
    if (Knob == "shortreads") {
      Seen = &SawShortReads;
      P.ShortReadP = Prob;
    } else if (Knob == "shortwrites") {
      Seen = &SawShortWrites;
      P.ShortWriteP = Prob;
    } else if (Knob == "drop") {
      Seen = &SawDrop;
      P.DropP = Prob;
    } else if (Knob == "dup") {
      Seen = &SawDup;
      P.DuplicateP = Prob;
    } else {
      return Fail("unknown knob '" + Knob + "'");
    }
    if (std::exchange(*Seen, true))
      return Fail("knob '" + Knob + "' given twice");
  }
  Out = std::move(P);
  Error.clear();
  return true;
}

FaultPlan &FaultPlan::failWith(SyscallKind Kind, int Err,
                               double Probability) {
  ErrnoRule R;
  R.Kind = Kind;
  R.Err = Err;
  R.Probability = Probability;
  Errnos.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::failWithOn(SyscallKind Kind, FdClass Class, int Err,
                                 double Probability) {
  ErrnoRule R;
  R.Kind = Kind;
  R.Class = Class;
  R.AnyClass = false;
  R.Err = Err;
  R.Probability = Probability;
  Errnos.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::failNth(SyscallKind Kind, uint64_t Nth, int Err) {
  return storm(Kind, Nth, 1, Err);
}

FaultPlan &FaultPlan::failNthOn(SyscallKind Kind, FdClass Class,
                                uint64_t Nth, int Err) {
  assert(Nth >= 1 && "occurrence indices are 1-based");
  ScriptedRule R;
  R.Kind = Kind;
  R.Class = Class;
  R.AnyClass = false;
  R.Nth = Nth;
  R.Err = Err;
  Scripted.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::storm(SyscallKind Kind, uint64_t Nth, uint64_t Count,
                            int Err) {
  assert(Nth >= 1 && "occurrence indices are 1-based");
  assert(Count >= 1 && "a storm fails at least one occurrence");
  ScriptedRule R;
  R.Kind = Kind;
  R.Nth = Nth;
  R.Count = Count;
  R.Err = Err;
  Scripted.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::shortReads(double Probability) {
  ShortReadP = Probability;
  return *this;
}

FaultPlan &FaultPlan::shortWrites(double Probability) {
  ShortWriteP = Probability;
  return *this;
}

FaultPlan &FaultPlan::dropPeerMessages(double Probability) {
  DropP = Probability;
  return *this;
}

FaultPlan &FaultPlan::duplicatePeerMessages(double Probability) {
  DuplicateP = Probability;
  return *this;
}

bool FaultPlan::active() const {
  return !Errnos.empty() || !Scripted.empty() || ShortReadP > 0.0 ||
         ShortWriteP > 0.0 || DropP > 0.0 || DuplicateP > 0.0;
}

uint64_t FaultPlan::hash() const {
  if (!active())
    return 0;
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  // Probabilities enter through their raw bit pattern: the hash only needs
  // to distinguish plans, not compare them numerically.
  auto MixP = [&Mix](double P) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(P));
    __builtin_memcpy(&Bits, &P, sizeof(Bits));
    Mix(Bits);
  };
  Mix(Errnos.size());
  for (const ErrnoRule &R : Errnos) {
    Mix(static_cast<uint64_t>(R.Kind));
    Mix(R.AnyClass ? ~0ull : static_cast<uint64_t>(R.Class));
    Mix(static_cast<uint64_t>(R.Err));
    MixP(R.Probability);
  }
  Mix(Scripted.size());
  for (const ScriptedRule &R : Scripted) {
    Mix(static_cast<uint64_t>(R.Kind));
    Mix(R.AnyClass ? ~0ull : static_cast<uint64_t>(R.Class));
    Mix(R.Nth);
    Mix(R.Count);
    Mix(static_cast<uint64_t>(R.Err));
  }
  MixP(ShortReadP);
  MixP(ShortWriteP);
  MixP(DropP);
  MixP(DuplicateP);
  return H;
}

void FaultInjector::arm(const FaultPlan &NewPlan, uint64_t Seed0,
                        uint64_t Seed1) {
  Plan = NewPlan;
  // Derive a stream distinct from the scheduler's (which is seeded with
  // the raw words): the same two META seeds still fully determine it.
  Rng.reseed(Seed0 ^ 0xFA517EC7ED5EED00ull, Seed1 + 0x0DDFA117);
  Armed = true;
  ScriptedSeen.assign(Plan.scriptedRules().size(), 0);
  Stats = Counters();
}

bool FaultInjector::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return Rng.nextBool(P);
}

bool FaultInjector::preIssue(SyscallKind Kind, FdClass Class,
                             SyscallResult &R) {
  if (!enabled())
    return false;
  // Scripted rules first — they are the reproducible regression triggers
  // and must not be masked by a probabilistic draw.
  const auto &Scripted = Plan.scriptedRules();
  for (size_t I = 0; I != Scripted.size(); ++I) {
    const FaultPlan::ScriptedRule &Rule = Scripted[I];
    if (Rule.Kind != Kind || (!Rule.AnyClass && Rule.Class != Class))
      continue;
    const uint64_t Seen = ++ScriptedSeen[I];
    if (Seen >= Rule.Nth && Seen < Rule.Nth + Rule.Count) {
      R = SyscallResult();
      R.Ret = -1;
      R.Err = Rule.Err;
      ++Stats.ErrnosInjected;
      return true;
    }
  }
  for (const FaultPlan::ErrnoRule &Rule : Plan.errnoRules()) {
    if (Rule.Kind != Kind || (!Rule.AnyClass && Rule.Class != Class))
      continue;
    if (chance(Rule.Probability)) {
      R = SyscallResult();
      R.Ret = -1;
      R.Err = Rule.Err;
      ++Stats.ErrnosInjected;
      return true;
    }
  }
  return false;
}

void FaultInjector::postIssue(SyscallKind Kind, FdClass, SyscallResult &R) {
  if (!enabled() || R.Ret <= 1 || R.Err != 0)
    return; // Nothing to shorten: failed, empty or single-byte transfer.
  const bool IsRead = Kind == SyscallKind::Read || Kind == SyscallKind::Recv ||
                      Kind == SyscallKind::RecvMsg;
  const bool IsWrite = Kind == SyscallKind::Write ||
                       Kind == SyscallKind::Send ||
                       Kind == SyscallKind::SendMsg;
  if (IsRead && chance(Plan.shortReadProbability())) {
    const uint64_t Len = 1 + Rng.nextBelow(static_cast<uint64_t>(R.Ret) - 1);
    R.Ret = static_cast<int64_t>(Len);
    if (R.OutBuf.size() > Len)
      R.OutBuf.resize(Len);
    ++Stats.ShortTransfers;
    return;
  }
  if (IsWrite && chance(Plan.shortWriteProbability())) {
    R.Ret = static_cast<int64_t>(
        1 + Rng.nextBelow(static_cast<uint64_t>(R.Ret) - 1));
    ++Stats.ShortTransfers;
  }
}

FaultInjector::MessageFate FaultInjector::messageFate() {
  if (!enabled())
    return MessageFate::Deliver;
  if (chance(Plan.dropProbability())) {
    ++Stats.MessagesDropped;
    return MessageFate::Drop;
  }
  if (chance(Plan.duplicateProbability())) {
    ++Stats.MessagesDuplicated;
    return MessageFate::Duplicate;
  }
  return MessageFate::Deliver;
}
