//===-- env/FaultPlan.cpp - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "env/FaultPlan.h"

#include <algorithm>
#include <cassert>

using namespace tsr;

FaultPlan FaultPlan::none() { return FaultPlan(); }

FaultPlan &FaultPlan::failWith(SyscallKind Kind, int Err,
                               double Probability) {
  ErrnoRule R;
  R.Kind = Kind;
  R.Err = Err;
  R.Probability = Probability;
  Errnos.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::failWithOn(SyscallKind Kind, FdClass Class, int Err,
                                 double Probability) {
  ErrnoRule R;
  R.Kind = Kind;
  R.Class = Class;
  R.AnyClass = false;
  R.Err = Err;
  R.Probability = Probability;
  Errnos.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::failNth(SyscallKind Kind, uint64_t Nth, int Err) {
  return storm(Kind, Nth, 1, Err);
}

FaultPlan &FaultPlan::failNthOn(SyscallKind Kind, FdClass Class,
                                uint64_t Nth, int Err) {
  assert(Nth >= 1 && "occurrence indices are 1-based");
  ScriptedRule R;
  R.Kind = Kind;
  R.Class = Class;
  R.AnyClass = false;
  R.Nth = Nth;
  R.Err = Err;
  Scripted.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::storm(SyscallKind Kind, uint64_t Nth, uint64_t Count,
                            int Err) {
  assert(Nth >= 1 && "occurrence indices are 1-based");
  assert(Count >= 1 && "a storm fails at least one occurrence");
  ScriptedRule R;
  R.Kind = Kind;
  R.Nth = Nth;
  R.Count = Count;
  R.Err = Err;
  Scripted.push_back(R);
  return *this;
}

FaultPlan &FaultPlan::shortReads(double Probability) {
  ShortReadP = Probability;
  return *this;
}

FaultPlan &FaultPlan::shortWrites(double Probability) {
  ShortWriteP = Probability;
  return *this;
}

FaultPlan &FaultPlan::dropPeerMessages(double Probability) {
  DropP = Probability;
  return *this;
}

FaultPlan &FaultPlan::duplicatePeerMessages(double Probability) {
  DuplicateP = Probability;
  return *this;
}

bool FaultPlan::active() const {
  return !Errnos.empty() || !Scripted.empty() || ShortReadP > 0.0 ||
         ShortWriteP > 0.0 || DropP > 0.0 || DuplicateP > 0.0;
}

uint64_t FaultPlan::hash() const {
  if (!active())
    return 0;
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ull;
  };
  // Probabilities enter through their raw bit pattern: the hash only needs
  // to distinguish plans, not compare them numerically.
  auto MixP = [&Mix](double P) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(P));
    __builtin_memcpy(&Bits, &P, sizeof(Bits));
    Mix(Bits);
  };
  Mix(Errnos.size());
  for (const ErrnoRule &R : Errnos) {
    Mix(static_cast<uint64_t>(R.Kind));
    Mix(R.AnyClass ? ~0ull : static_cast<uint64_t>(R.Class));
    Mix(static_cast<uint64_t>(R.Err));
    MixP(R.Probability);
  }
  Mix(Scripted.size());
  for (const ScriptedRule &R : Scripted) {
    Mix(static_cast<uint64_t>(R.Kind));
    Mix(R.AnyClass ? ~0ull : static_cast<uint64_t>(R.Class));
    Mix(R.Nth);
    Mix(R.Count);
    Mix(static_cast<uint64_t>(R.Err));
  }
  MixP(ShortReadP);
  MixP(ShortWriteP);
  MixP(DropP);
  MixP(DuplicateP);
  return H;
}

void FaultInjector::arm(const FaultPlan &NewPlan, uint64_t Seed0,
                        uint64_t Seed1) {
  Plan = NewPlan;
  // Derive a stream distinct from the scheduler's (which is seeded with
  // the raw words): the same two META seeds still fully determine it.
  Rng.reseed(Seed0 ^ 0xFA517EC7ED5EED00ull, Seed1 + 0x0DDFA117);
  Armed = true;
  ScriptedSeen.assign(Plan.scriptedRules().size(), 0);
  Stats = Counters();
}

bool FaultInjector::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return Rng.nextBool(P);
}

bool FaultInjector::preIssue(SyscallKind Kind, FdClass Class,
                             SyscallResult &R) {
  if (!enabled())
    return false;
  // Scripted rules first — they are the reproducible regression triggers
  // and must not be masked by a probabilistic draw.
  const auto &Scripted = Plan.scriptedRules();
  for (size_t I = 0; I != Scripted.size(); ++I) {
    const FaultPlan::ScriptedRule &Rule = Scripted[I];
    if (Rule.Kind != Kind || (!Rule.AnyClass && Rule.Class != Class))
      continue;
    const uint64_t Seen = ++ScriptedSeen[I];
    if (Seen >= Rule.Nth && Seen < Rule.Nth + Rule.Count) {
      R = SyscallResult();
      R.Ret = -1;
      R.Err = Rule.Err;
      ++Stats.ErrnosInjected;
      return true;
    }
  }
  for (const FaultPlan::ErrnoRule &Rule : Plan.errnoRules()) {
    if (Rule.Kind != Kind || (!Rule.AnyClass && Rule.Class != Class))
      continue;
    if (chance(Rule.Probability)) {
      R = SyscallResult();
      R.Ret = -1;
      R.Err = Rule.Err;
      ++Stats.ErrnosInjected;
      return true;
    }
  }
  return false;
}

void FaultInjector::postIssue(SyscallKind Kind, FdClass, SyscallResult &R) {
  if (!enabled() || R.Ret <= 1 || R.Err != 0)
    return; // Nothing to shorten: failed, empty or single-byte transfer.
  const bool IsRead = Kind == SyscallKind::Read || Kind == SyscallKind::Recv ||
                      Kind == SyscallKind::RecvMsg;
  const bool IsWrite = Kind == SyscallKind::Write ||
                       Kind == SyscallKind::Send ||
                       Kind == SyscallKind::SendMsg;
  if (IsRead && chance(Plan.shortReadProbability())) {
    const uint64_t Len = 1 + Rng.nextBelow(static_cast<uint64_t>(R.Ret) - 1);
    R.Ret = static_cast<int64_t>(Len);
    if (R.OutBuf.size() > Len)
      R.OutBuf.resize(Len);
    ++Stats.ShortTransfers;
    return;
  }
  if (IsWrite && chance(Plan.shortWriteProbability())) {
    R.Ret = static_cast<int64_t>(
        1 + Rng.nextBelow(static_cast<uint64_t>(R.Ret) - 1));
    ++Stats.ShortTransfers;
  }
}

FaultInjector::MessageFate FaultInjector::messageFate() {
  if (!enabled())
    return MessageFate::Deliver;
  if (chance(Plan.dropProbability())) {
    ++Stats.MessagesDropped;
    return MessageFate::Drop;
  }
  if (chance(Plan.duplicateProbability())) {
    ++Stats.MessagesDuplicated;
    return MessageFate::Duplicate;
  }
  return MessageFate::Deliver;
}
