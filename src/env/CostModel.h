//===-- env/CostModel.h - Virtual-time performance model -------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic virtual-time model of the paper's performance effects.
/// The evaluation host here has a single CPU, so the paper's headline
/// performance phenomenon — tsan11rec preserving parallelism that rr's
/// sequentialization destroys (§5.2, §5.3) — cannot appear in wall-clock
/// numbers. This model reproduces it analytically and deterministically:
///
///  * Invisible work advances only the running thread's local clock
///    (threads overlap freely, as on the paper's 8-core i7-4770).
///  * Under controlled scheduling, visible operations are totally ordered
///    and therefore form a global chain: each visible op starts no earlier
///    than the previous visible op ended, on any thread. A designated
///    thread that is still deep in invisible work stalls the chain — which
///    is exactly why the random strategy is slower than queue (§5.2).
///  * Under rr-style sequentialization, *all* work joins the chain, so an
///    N-thread CPU-bound workload degrades by ~N.
///  * Synchronisation (mutexes, joins) propagates clocks through the sync
///    object, modelling contention in the uncontrolled configurations.
///  * Instrumentation cost is a multiplicative factor on invisible work
///    plus a fixed cost per visible operation.
///
/// Benchmarks report makespans and throughputs in this virtual time; see
/// EXPERIMENTS.md for the shape comparison against the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef TSR_ENV_COSTMODEL_H
#define TSR_ENV_COSTMODEL_H

#include "support/VectorClock.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace tsr {

/// Virtual nanoseconds.
using VTime = uint64_t;

/// Knobs describing one tool configuration's cost structure.
struct CostModelConfig {
  /// Multiplier on declared invisible work (tsan's shadow instrumentation:
  /// the paper quotes ~10x for access-heavy code; compute-heavy kernels
  /// see less).
  double InstrFactor = 1.0;

  /// Visible operations are serialized on a global chain (controlled
  /// scheduling).
  bool ChainVisibleOps = false;

  /// All work is serialized on the global chain (rr's sequentialization).
  bool SequentializeAll = false;

  /// Fixed virtual cost of one visible operation (instrumentation +
  /// scheduler handoff).
  VTime VisibleOpCost = 100;

  /// Extra virtual cost per recorded syscall (compression + demo write).
  VTime SyscallRecordCost = 600;

  /// When an eager strategy designates a thread that has not reached
  /// Wait() yet, everyone stalls until it arrives — the random strategy's
  /// pathology (§5.2): it picks among all enabled threads, parked or
  /// not, while queue only designates arrived threads. During the stall
  /// the whole system is dead in wall time, so the charge — the
  /// designated thread's virtual-time lead over the chain, limited to
  /// its current invisible segment (declared work since its last visible
  /// op), capped here, plus a fixed handoff cost — advances every
  /// thread's clock. The estimate uses virtual time only; physical
  /// arrival state must never feed it, because recorded syscalls embed
  /// these clocks and recording must be a pure function of the seeds.
  VTime EagerStallCapNs = 5000000;
  VTime EagerStallFixedNs = 2000;

  /// Extra cost of a blocking synchronisation operation (contended lock,
  /// condvar block): under the rr model these are futex syscalls that
  /// trap into the recorder.
  VTime BlockingOpCost = 0;
};

/// Tracks per-thread virtual clocks plus the global visible-op chain.
/// Thread-safe; invisible-work updates take a short internal lock.
class CostModel {
public:
  explicit CostModel(CostModelConfig Config = {}) : Config(Config) {}

  /// Registers a thread; its clock starts at the parent's current time
  /// (pass InvalidTid for the main thread).
  void threadStart(Tid T, Tid Parent);

  /// Declared invisible compute on thread \p T.
  void work(Tid T, VTime Ns);

  /// One visible operation by \p T; \p ExtraCost adds syscall payload
  /// costs on top of the per-op constant.
  void visibleOp(Tid T, VTime ExtraCost = 0);

  /// Acquire side of a sync object: T's clock catches up to the object.
  void syncAcquire(Tid T, VTime ObjTime);

  /// Release side: returns the released timestamp for the sync object.
  VTime syncRelease(Tid T);

  /// T waited (virtually) until \p Until; no-op if already past it.
  void waitUntil(Tid T, VTime Until);

  /// Advances T's clock by \p Ns (bounded waits like lock contention;
  /// not scaled by the instrumentation factor).
  void advance(Tid T, VTime Ns);

  /// A blocking sync operation by T (contended lock, condvar block);
  /// charges BlockingOpCost.
  void blockingOp(Tid T);

  /// An eager strategy designated T; T's next visible op prices any
  /// resulting chain stall from virtual-time state alone (no charge if T
  /// was not virtually behind on declared work).
  void markEagerStall(Tid T);

  /// Charges a serialization stall to the global chain (see
  /// EagerPickStallNs).
  void chainPenalty(VTime Ns);

  /// Current local time of \p T.
  VTime localTime(Tid T);

  /// Makespan: the maximum local time across all threads.
  VTime makespan();

  /// Number of eager-designation stalls charged so far.
  uint64_t eagerStallCount();

  /// Total virtual ns charged for eager-designation stalls.
  uint64_t eagerChargedNs();

  const CostModelConfig &config() const { return Config; }

private:
  void chain(Tid T, VTime Cost);

  CostModelConfig Config;
  std::mutex Mu;
  std::vector<VTime> Local;
  /// Declared invisible work since the thread's last visible op; the
  /// basis of the eager-designation stall estimate.
  std::vector<VTime> WorkSinceOp;
  std::vector<bool> EagerStalled;
  uint64_t EagerStalls = 0;
  VTime EagerChargedNs = 0;
  VTime GlobalChain = 0;
};

} // namespace tsr

#endif // TSR_ENV_COSTMODEL_H
