//===-- tools/TelemetryRollup.cpp - tsr-telemetry-rollup -------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Rolls the JSONL telemetry streams of multiple sessions into one fleet
// summary. Each input file is a SessionConfig::Telemetry stream: one
// {"type":"tsr-telemetry",...} object per line with cumulative "counters".
// The rollup takes each stream's last frame (the cumulative totals) and
// sums them across streams, reporting per-counter totals plus per-stream
// frame/tick statistics.
//
// Usage: tsr-telemetry-rollup <stream.jsonl>... [> fleet.json]
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace tsr;

namespace {

/// Minimal scanner for the flat one-line frames TelemetrySink writes. Not
/// a general JSON parser: keys never contain escapes we care about beyond
/// jsonEscape's output, and values in "counters" are unsigned integers.
struct Frame {
  uint64_t Tick = 0;
  uint64_t Seq = 0;
  bool Final = false;
  std::map<std::string, uint64_t> Counters;
};

bool scanU64(const std::string &Line, const char *Key, uint64_t &Out) {
  const std::string Needle = std::string("\"") + Key + "\": ";
  const size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  Out = std::strtoull(Line.c_str() + At + Needle.size(), nullptr, 10);
  return true;
}

/// Parses the {"name": value, ...} object following \p Key.
void scanCounterObject(const std::string &Line, const char *Key,
                       std::map<std::string, uint64_t> &Out) {
  const std::string Needle = std::string("\"") + Key + "\": {";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return;
  At += Needle.size();
  while (At < Line.size() && Line[At] != '}') {
    const size_t KeyStart = Line.find('"', At);
    if (KeyStart == std::string::npos)
      return;
    const size_t KeyEnd = Line.find('"', KeyStart + 1);
    if (KeyEnd == std::string::npos)
      return;
    const size_t Colon = Line.find(':', KeyEnd);
    if (Colon == std::string::npos)
      return;
    Out[Line.substr(KeyStart + 1, KeyEnd - KeyStart - 1)] =
        std::strtoull(Line.c_str() + Colon + 1, nullptr, 10);
    const size_t Comma = Line.find_first_of(",}", Colon);
    if (Comma == std::string::npos)
      return;
    At = Line[Comma] == ',' ? Comma + 1 : Comma;
  }
}

bool parseFrame(const std::string &Line, Frame &F) {
  if (Line.find("\"type\": \"tsr-telemetry\"") == std::string::npos)
    return false;
  scanU64(Line, "tick", F.Tick);
  scanU64(Line, "seq", F.Seq);
  F.Final = Line.find("\"final\": true") != std::string::npos;
  scanCounterObject(Line, "counters", F.Counters);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2 || std::strcmp(Argv[1], "--help") == 0 ||
      std::strcmp(Argv[1], "-h") == 0) {
    std::fprintf(stderr,
                 "usage: %s <stream.jsonl>...\n"
                 "\n"
                 "Sums the final cumulative counters of each session's\n"
                 "telemetry stream into one fleet summary (JSON, stdout).\n",
                 Argv[0]);
    return 2;
  }

  std::map<std::string, uint64_t> Fleet;
  uint64_t Streams = 0, TotalFrames = 0, MaxTick = 0, FinalFrames = 0;
  std::vector<std::string> Damaged;

  for (int I = 1; I < Argc; ++I) {
    FILE *F = std::fopen(Argv[I], "r");
    if (!F) {
      std::fprintf(stderr, "warning: cannot read %s (skipped)\n", Argv[I]);
      Damaged.push_back(Argv[I]);
      continue;
    }
    Frame LastFrame;
    uint64_t Frames = 0;
    std::string Line;
    char Buf[4096];
    while (std::fgets(Buf, sizeof(Buf), F)) {
      Line = Buf;
      // Reassemble frames longer than the buffer.
      while (!Line.empty() && Line.back() != '\n' &&
             std::fgets(Buf, sizeof(Buf), F))
        Line += Buf;
      Frame Fr;
      if (!parseFrame(Line, Fr))
        continue;
      ++Frames;
      LastFrame = std::move(Fr);
    }
    std::fclose(F);
    if (!Frames) {
      std::fprintf(stderr, "warning: %s holds no telemetry frames\n",
                   Argv[I]);
      Damaged.push_back(Argv[I]);
      continue;
    }
    ++Streams;
    TotalFrames += Frames;
    FinalFrames += LastFrame.Final ? 1 : 0;
    MaxTick = LastFrame.Tick > MaxTick ? LastFrame.Tick : MaxTick;
    for (const auto &C : LastFrame.Counters)
      Fleet[C.first] += C.second;
  }

  std::printf("{\n  \"type\": \"tsr-telemetry-fleet\",\n"
              "  \"streams\": %llu,\n  \"frames\": %llu,\n"
              "  \"complete_streams\": %llu,\n  \"max_tick\": %llu,\n"
              "  \"totals\": {",
              static_cast<unsigned long long>(Streams),
              static_cast<unsigned long long>(TotalFrames),
              static_cast<unsigned long long>(FinalFrames),
              static_cast<unsigned long long>(MaxTick));
  bool First = true;
  for (const auto &C : Fleet) {
    std::printf("%s\n    \"%s\": %llu", First ? "" : ",",
                jsonEscape(C.first).c_str(),
                static_cast<unsigned long long>(C.second));
    First = false;
  }
  std::printf("%s},\n  \"skipped\": [", First ? "" : "\n  ");
  for (size_t I = 0; I != Damaged.size(); ++I)
    std::printf("%s\"%s\"", I ? ", " : "", jsonEscape(Damaged[I]).c_str());
  std::printf("]\n}\n");
  return Streams ? 0 : 1;
}
