//===-- tools/DemoDump.cpp - tsr-demo-dump ---------------------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Inspects a demo directory: decodes META, the QUEUE schedule, SIGNAL and
// ASYNC events and the SYSCALL records, and prints a human-readable
// report. Handy for debugging replay divergence.
//
// Usage: tsr-demo-dump <demo-dir> [max-entries-per-stream]
//        tsr-demo-dump verify <demo-dir>
//
// The verify subcommand checks every stream file's integrity header
// (magic, format version, kind byte, payload length, CRC-32) and the
// record structure of each stream, printing per-stream sizes and record
// counts. Exit status is nonzero when anything is corrupt.
//
//===----------------------------------------------------------------------===//

#include "support/DemoInspect.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tsr;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <demo-dir> [max-entries-per-stream]\n"
               "       %s verify <demo-dir>\n",
               Prog, Prog);
  return 2;
}

/// Number of decoded records in a stream, for the verify listing. META is
/// a single header, QUEUE counts ticks, the rest count records.
size_t recordCount(const DemoInfo &Info, StreamKind Kind) {
  switch (Kind) {
  case StreamKind::Meta:
    return Info.MetaValid ? 1 : 0;
  case StreamKind::Queue:
    return Info.Schedule.size();
  case StreamKind::Signal:
    return Info.Signals.size();
  case StreamKind::Syscall:
    return Info.Syscalls.size();
  case StreamKind::Async:
    return Info.Asyncs.size();
  }
  return 0;
}

int verifyCommand(const char *Dir) {
  std::array<Demo::StreamCheck, NumStreamKinds> Checks;
  std::string Error;
  const bool HeadersOk = Demo::verifyDirectory(Dir, Checks, Error);

  // Headers fine: also decode the records so the listing can show counts
  // and catch in-payload structural damage the CRC already rules out for
  // on-disk demos (but not for hand-assembled ones).
  Demo D;
  DemoInfo Info;
  bool Decoded = false;
  if (HeadersOk && D.loadFromDirectory(Dir, Error, Demo::LoadMode::Strict)) {
    Info = inspectDemo(D);
    Decoded = true;
  }

  bool AllOk = HeadersOk && Decoded && Info.Problems.empty();
  std::printf("verify %s\n", Dir);
  for (unsigned I = 0; I != NumStreamKinds; ++I) {
    const Demo::StreamCheck &C = Checks[I];
    const char *Name = streamName(C.Kind);
    if (!C.Error.empty()) {
      std::printf("  %-7s FAIL  %s\n", Name, C.Error.c_str());
      continue;
    }
    if (!C.Present) {
      std::printf("  %-7s absent (loads as an empty stream)\n", Name);
      continue;
    }
    if (Decoded)
      std::printf("  %-7s ok    %6zu bytes  crc32=%08x  %zu record%s\n",
                  Name, C.PayloadBytes, C.Crc, recordCount(Info, C.Kind),
                  recordCount(Info, C.Kind) == 1 ? "" : "s");
    else
      std::printf("  %-7s ok    %6zu bytes  crc32=%08x\n", Name,
                  C.PayloadBytes, C.Crc);
  }
  for (const std::string &P : Info.Problems) {
    std::printf("  record damage: %s\n", P.c_str());
    AllOk = false;
  }
  if (!AllOk && !Error.empty())
    std::printf("error: %s\n", Error.c_str());
  std::printf("%s\n", AllOk ? "OK" : "CORRUPT");
  return AllOk ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);

  if (std::strcmp(Argv[1], "verify") == 0) {
    if (Argc != 3)
      return usage(Argv[0]);
    return verifyCommand(Argv[2]);
  }

  const size_t MaxEntries =
      Argc > 2 ? static_cast<size_t>(std::atoi(Argv[2])) : 20;

  Demo D;
  std::string Error;
  if (!D.loadFromDirectory(Argv[1], Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("demo %s: %zu bytes (META=%zu QUEUE=%zu SIGNAL=%zu "
              "SYSCALL=%zu ASYNC=%zu)\n\n",
              Argv[1], D.totalSize(), D.streamSize(StreamKind::Meta),
              D.streamSize(StreamKind::Queue),
              D.streamSize(StreamKind::Signal),
              D.streamSize(StreamKind::Syscall),
              D.streamSize(StreamKind::Async));
  const DemoInfo Info = inspectDemo(D);
  std::fputs(formatDemoInfo(Info, MaxEntries).c_str(), stdout);
  return Info.Problems.empty() ? 0 : 1;
}
