//===-- tools/DemoDump.cpp - tsr-demo-dump ---------------------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Inspects a demo directory: decodes META, the QUEUE schedule, SIGNAL and
// ASYNC events and the SYSCALL records, and prints a human-readable
// report. Handy for debugging replay divergence.
//
// Usage: tsr-demo-dump <demo-dir> [max-entries-per-stream]
//        tsr-demo-dump verify <demo-dir>
//        tsr-demo-dump repair <demo-dir>
//
// The verify subcommand checks every stream file's integrity framing
// (magic, format version, kind byte, chunk CRCs for v3, payload CRC for
// v2) and the record structure of each stream, printing per-stream sizes,
// chunk counts and closure state. The repair subcommand salvages a demo
// directory left behind by a crashed recording: it drops torn chunk tails
// and cross-trims every stream to the last consistent tick frontier.
//
//===----------------------------------------------------------------------===//

#include "support/DemoInspect.h"
#include "support/Profile.h"
#include "support/Recovery.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

using namespace tsr;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s <demo-dir> [max-entries-per-stream]\n"
      "       %s verify <demo-dir>\n"
      "       %s repair <demo-dir>\n"
      "       %s timeline <demo-dir> [out.json]\n"
      "       %s profile <demo-dir> [out.json]\n"
      "\n"
      "timeline renders the demo's QUEUE/SIGNAL/ASYNC streams as Chrome\n"
      "trace-event JSON (ts = scheduler tick) to out.json, or stdout when\n"
      "omitted. Open it at https://ui.perfetto.dev or chrome://tracing.\n"
      "Recovery sidecar actions (RECOVERY) appear as instant events.\n"
      "\n"
      "profile reconstructs the schedule-level causal profile offline\n"
      "from the QUEUE/SIGNAL/SYSCALL streams — no re-execution: the\n"
      "virtual-time critical path with per-handoff gap attribution,\n"
      "per-thread utilization and the waiter/blocker contention matrix\n"
      "as canonical JSON (tsr-profile-core-v1), bit-identical to the\n"
      "in-process profile of the run that recorded the demo.\n"
      "\n"
      "verify exit status:\n"
      "  0  every stream is intact\n"
      "  1  the directory is a demo but at least one stream is corrupt\n"
      "     (try `repair` if it was recorded incrementally)\n"
      "  2  the directory is unreadable or not a tsr demo at all\n"
      "     (also returned for usage errors)\n"
      "\n"
      "repair exit status:\n"
      "  0  demo is intact, or was salvaged to a consistent prefix\n"
      "  1  salvage failed (damage beyond torn chunk tails)\n"
      "  2  the directory is unreadable or not a tsr demo at all\n",
      Prog, Prog, Prog, Prog, Prog);
  return 2;
}

/// True when \p Dir cannot possibly hold a demo: not a directory, or the
/// META stream file is absent. Distinguishes "you pointed me at the wrong
/// path" (exit 2) from "this demo is damaged" (exit 1).
bool unreadableDirectory(const char *Dir) {
  std::error_code Ec;
  if (!std::filesystem::is_directory(Dir, Ec) || Ec)
    return true;
  const std::string MetaFile =
      std::string(Dir) + "/" + streamName(StreamKind::Meta);
  return !std::filesystem::exists(MetaFile, Ec) || Ec;
}

/// Number of decoded records in a stream, for the verify listing. META is
/// a single header, QUEUE counts ticks, the rest count records.
size_t recordCount(const DemoInfo &Info, StreamKind Kind) {
  switch (Kind) {
  case StreamKind::Meta:
    return Info.MetaValid ? 1 : 0;
  case StreamKind::Queue:
    return Info.Schedule.size();
  case StreamKind::Signal:
    return Info.Signals.size();
  case StreamKind::Syscall:
    return Info.Syscalls.size();
  case StreamKind::Async:
    return Info.Asyncs.size();
  }
  return 0;
}

/// Prints the RECOVERY sidecar summary (if any) under a verify/repair
/// listing. The sidecar is advisory metadata: damage to it is reported as
/// a warning but never changes the exit-code contract.
void printRecoverySidecar(const char *Dir) {
  RecoverySidecarInfo Side;
  if (!loadRecoverySidecar(Dir, Side))
    return;
  if (!Side.Valid) {
    std::printf("  RECOVERY sidecar damaged (ignored): %s\n",
                Side.Error.c_str());
    return;
  }
  std::printf("  RECOVERY sidecar: %llu action%s",
              static_cast<unsigned long long>(Side.Total),
              Side.Total == 1 ? "" : "s");
  bool FirstStream = true;
  for (unsigned I = 0; I != NumStreamKinds; ++I) {
    if (!Side.ByStream[I])
      continue;
    std::printf("%s%s=%llu", FirstStream ? "  (" : " ",
                streamName(static_cast<StreamKind>(I)),
                static_cast<unsigned long long>(Side.ByStream[I]));
    FirstStream = false;
  }
  if (!FirstStream)
    std::printf(")");
  std::printf("\n");
  for (unsigned I = 0; I != NumRecoveryActionKinds; ++I) {
    if (!Side.ByKind[I])
      continue;
    std::printf("    %-18s %llu\n",
                recoveryActionKindName(static_cast<RecoveryActionKind>(I)),
                static_cast<unsigned long long>(Side.ByKind[I]));
  }
}

int verifyCommand(const char *Dir) {
  if (unreadableDirectory(Dir)) {
    std::fprintf(stderr, "error: %s: unreadable or not a tsr demo directory\n",
                 Dir);
    return 2;
  }
  std::array<Demo::StreamCheck, NumStreamKinds> Checks;
  std::string Error;
  const bool HeadersOk = Demo::verifyDirectory(Dir, Checks, Error);

  // Headers fine: also decode the records so the listing can show counts
  // and catch in-payload structural damage the CRC already rules out for
  // on-disk demos (but not for hand-assembled ones).
  Demo D;
  DemoInfo Info;
  bool Decoded = false;
  if (HeadersOk && D.loadFromDirectory(Dir, Error, Demo::LoadMode::Strict)) {
    Info = inspectDemo(D);
    Decoded = true;
  }

  bool AllOk = HeadersOk && Decoded && Info.Problems.empty();
  std::printf("verify %s\n", Dir);
  for (unsigned I = 0; I != NumStreamKinds; ++I) {
    const Demo::StreamCheck &C = Checks[I];
    const char *Name = streamName(C.Kind);
    if (!C.Error.empty()) {
      std::printf("  %-7s FAIL  %s\n", Name, C.Error.c_str());
      continue;
    }
    if (!C.Present) {
      std::printf("  %-7s absent (loads as an empty stream)\n", Name);
      continue;
    }
    char Framing[64];
    if (C.Version >= Demo::FormatVersion)
      std::snprintf(Framing, sizeof(Framing), "v%u %zu chunk%s %s",
                    C.Version, C.Chunks, C.Chunks == 1 ? "" : "s",
                    C.Closed ? "closed" : "OPEN");
    else
      std::snprintf(Framing, sizeof(Framing), "v%u", C.Version);
    if (Decoded)
      std::printf("  %-7s ok    %6zu bytes  crc32=%08x  [%s]  %zu record%s\n",
                  Name, C.PayloadBytes, C.Crc, Framing,
                  recordCount(Info, C.Kind),
                  recordCount(Info, C.Kind) == 1 ? "" : "s");
    else
      std::printf("  %-7s ok    %6zu bytes  crc32=%08x  [%s]\n", Name,
                  C.PayloadBytes, C.Crc, Framing);
  }
  if (Decoded && D.truncated())
    std::printf("  demo is a salvaged prefix truncated at tick %llu\n",
                static_cast<unsigned long long>(D.frontier()));
  printRecoverySidecar(Dir);
  for (const std::string &P : Info.Problems) {
    std::printf("  record damage: %s\n", P.c_str());
    AllOk = false;
  }
  if (!AllOk && !Error.empty())
    std::printf("error: %s\n", Error.c_str());
  std::printf("%s\n", AllOk ? "OK" : "CORRUPT");
  return AllOk ? 0 : 1;
}

int repairCommand(const char *Dir) {
  if (unreadableDirectory(Dir)) {
    std::fprintf(stderr, "error: %s: unreadable or not a tsr demo directory\n",
                 Dir);
    return 2;
  }
  Demo::SalvageReport Rep;
  std::string Error;
  if (!Demo::salvageDirectory(Dir, Rep, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("repair %s\n", Dir);
  for (const Demo::StreamFix &F : Rep.Streams) {
    const char *Name = streamName(F.Kind);
    if (!F.Present) {
      std::printf("  %-7s absent\n", Name);
      continue;
    }
    if (!F.Rewritten) {
      std::printf("  %-7s intact (%zu chunk%s kept)\n", Name, F.ChunksKept,
                  F.ChunksKept == 1 ? "" : "s");
      continue;
    }
    std::printf("  %-7s rewritten: kept %zu chunk%s, dropped %zu chunk%s "
                "(%zu byte%s)\n",
                Name, F.ChunksKept, F.ChunksKept == 1 ? "" : "s",
                F.ChunksDropped, F.ChunksDropped == 1 ? "" : "s",
                F.BytesDropped, F.BytesDropped == 1 ? "" : "s");
  }
  printRecoverySidecar(Dir);
  if (Rep.Clean)
    std::printf("demo was already consistent; nothing to do\n");
  else
    std::printf("salvaged prefix is consistent up to tick %llu\n",
                static_cast<unsigned long long>(Rep.Frontier));
  return 0;
}

int timelineCommand(const char *Dir, const char *OutPath) {
  if (unreadableDirectory(Dir)) {
    std::fprintf(stderr, "error: %s: unreadable or not a tsr demo directory\n",
                 Dir);
    return 2;
  }
  Demo D;
  std::string Error;
  if (!D.loadFromDirectory(Dir, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  const DemoInfo Info = inspectDemo(D);
  for (const std::string &P : Info.Problems)
    std::fprintf(stderr, "warning: %s\n", P.c_str());
  // A RECOVERY sidecar (if present and intact) lands on the engine row.
  RecoverySidecarInfo Side;
  const bool HasSidecar = loadRecoverySidecar(Dir, Side) && Side.Valid;
  const std::string Json =
      demoTimelineJson(Info, HasSidecar ? &Side : nullptr);
  if (!OutPath) {
    std::fwrite(Json.data(), 1, Json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  FILE *F = std::fopen(OutPath, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath);
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %zu ticks, %zu signals, %zu async events, %zu "
              "recovery actions to %s\n",
              Info.Schedule.size(), Info.Signals.size(), Info.Asyncs.size(),
              HasSidecar ? Side.Actions.size() : 0, OutPath);
  return 0;
}

int profileCommand(const char *Dir, const char *OutPath) {
  if (unreadableDirectory(Dir)) {
    std::fprintf(stderr, "error: %s: unreadable or not a tsr demo directory\n",
                 Dir);
    return 2;
  }
  Demo D;
  std::string Error;
  if (!D.loadFromDirectory(Dir, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  const DemoInfo Info = inspectDemo(D);
  for (const std::string &P : Info.Problems)
    std::fprintf(stderr, "warning: %s\n", P.c_str());
  const ProfileCore Core = analyzeProfile(profileInputsFromDemo(Info));
  const std::string Json = profileCoreJson(Core);
  if (!OutPath) {
    std::fwrite(Json.data(), 1, Json.size(), stdout);
    return 0;
  }
  FILE *F = std::fopen(OutPath, "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath);
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote profile of %llu ticks across %llu threads (%zu "
              "critical-path segments) to %s\n",
              static_cast<unsigned long long>(Core.TotalTicks),
              static_cast<unsigned long long>(Core.Threads),
              Core.CriticalPath.size(), OutPath);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2 || std::strcmp(Argv[1], "--help") == 0 ||
      std::strcmp(Argv[1], "-h") == 0)
    return usage(Argv[0]);

  if (std::strcmp(Argv[1], "verify") == 0) {
    if (Argc != 3)
      return usage(Argv[0]);
    return verifyCommand(Argv[2]);
  }

  if (std::strcmp(Argv[1], "repair") == 0) {
    if (Argc != 3)
      return usage(Argv[0]);
    return repairCommand(Argv[2]);
  }

  if (std::strcmp(Argv[1], "timeline") == 0) {
    if (Argc != 3 && Argc != 4)
      return usage(Argv[0]);
    return timelineCommand(Argv[2], Argc == 4 ? Argv[3] : nullptr);
  }

  if (std::strcmp(Argv[1], "profile") == 0) {
    if (Argc != 3 && Argc != 4)
      return usage(Argv[0]);
    return profileCommand(Argv[2], Argc == 4 ? Argv[3] : nullptr);
  }

  const size_t MaxEntries =
      Argc > 2 ? static_cast<size_t>(std::atoi(Argv[2])) : 20;

  Demo D;
  std::string Error;
  if (!D.loadFromDirectory(Argv[1], Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("demo %s: %zu bytes (META=%zu QUEUE=%zu SIGNAL=%zu "
              "SYSCALL=%zu ASYNC=%zu)\n\n",
              Argv[1], D.totalSize(), D.streamSize(StreamKind::Meta),
              D.streamSize(StreamKind::Queue),
              D.streamSize(StreamKind::Signal),
              D.streamSize(StreamKind::Syscall),
              D.streamSize(StreamKind::Async));
  if (D.truncated())
    std::printf("demo is a salvaged prefix truncated at tick %llu\n\n",
                static_cast<unsigned long long>(D.frontier()));
  const DemoInfo Info = inspectDemo(D);
  std::fputs(formatDemoInfo(Info, MaxEntries).c_str(), stdout);
  return Info.Problems.empty() ? 0 : 1;
}
