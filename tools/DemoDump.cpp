//===-- tools/DemoDump.cpp - tsr-demo-dump ---------------------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Inspects a demo directory: decodes META, the QUEUE schedule, SIGNAL and
// ASYNC events and the SYSCALL records, and prints a human-readable
// report. Handy for debugging replay divergence.
//
// Usage: tsr-demo-dump <demo-dir> [max-entries-per-stream]
//
//===----------------------------------------------------------------------===//

#include "support/DemoInspect.h"

#include <cstdio>
#include <cstdlib>

using namespace tsr;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <demo-dir> [max-entries-per-stream]\n",
                 Argv[0]);
    return 2;
  }
  const size_t MaxEntries =
      Argc > 2 ? static_cast<size_t>(std::atoi(Argv[2])) : 20;

  Demo D;
  std::string Error;
  if (!D.loadFromDirectory(Argv[1], Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("demo %s: %zu bytes (META=%zu QUEUE=%zu SIGNAL=%zu "
              "SYSCALL=%zu ASYNC=%zu)\n\n",
              Argv[1], D.totalSize(), D.streamSize(StreamKind::Meta),
              D.streamSize(StreamKind::Queue),
              D.streamSize(StreamKind::Signal),
              D.streamSize(StreamKind::Syscall),
              D.streamSize(StreamKind::Async));
  const DemoInfo Info = inspectDemo(D);
  std::fputs(formatDemoInfo(Info, MaxEntries).c_str(), stdout);
  return Info.Problems.empty() ? 0 : 1;
}
