//===-- bench/limitation_layout.cpp - Section 5.5 limitation (E9) --------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces the Section 5.5 limitation study: a program whose control
// flow depends on memory layout (pointer-ordered container iteration)
// rapidly desynchronises under sparse replay, while the full rr-like
// policy — which records the layout source — replays it faithfully.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/layout/Layout.h"
#include "support/Diag.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  quietWarnings(true); // desyncs are the experiment, not noise
  const int Trials = envInt("TSR_BENCH_REPS", 10);
  const int Items = envInt("TSR_LAYOUT_ITEMS", 64);

  std::printf("Section 5.5 limitation: layout-dependent program, %d "
              "items, %d trials per policy\n\n",
              Items, Trials);

  struct PolicyRow {
    const char *Name;
    RecordPolicy Policy;
  };
  const PolicyRow Rows[] = {
      {"sparse (httpd policy)", RecordPolicy::httpd()},
      {"full (rr-like policy)", RecordPolicy::full()},
  };

  for (const PolicyRow &Row : Rows) {
    int HardDesyncs = 0, Faithful = 0, SoftDiverged = 0;
    for (int Trial = 0; Trial != Trials; ++Trial) {
      Demo D;
      uint64_t RecHash = 0;
      {
        SessionConfig C = presets::tsan11rec(StrategyKind::Queue,
                                             Mode::Record, Row.Policy);
        C.Seed0 = 7 + Trial;
        C.Seed1 = 8 + Trial;
        // Fresh environment entropy: the replay session's allocator
        // layout will differ, as a new process's heap would.
        C.Env.Seed0 = 0;
        C.Env.Seed1 = 0;
        Session S(C);
        layout::LayoutResult R;
        RunReport Report = S.run([&] { R = layout::run(Items); });
        D = Report.RecordedDemo;
        RecHash = R.OrderHash;
      }
      SessionConfig C = presets::tsan11rec(StrategyKind::Queue,
                                           Mode::Replay, Row.Policy);
      C.ReplayDemo = &D;
      C.Env.Seed0 = 0;
      C.Env.Seed1 = 0;
      Session S(C);
      layout::LayoutResult R;
      RunReport Report = S.run([&] { R = layout::run(Items); });
      if (Report.Desync == DesyncKind::Hard)
        ++HardDesyncs;
      else if (R.OrderHash == RecHash)
        ++Faithful;
      else
        ++SoftDiverged; // constraints held but the observable output drifted
    }
    std::printf("  %-24s hard desyncs: %2d/%d   soft divergence: %2d/%d   "
                "faithful: %2d/%d\n",
                Row.Name, HardDesyncs, Trials, SoftDiverged, Trials,
                Faithful, Trials);
  }

  std::printf("\nPaper shape check: the sparse policy diverges (hard or "
              "soft) on essentially\nevery trial; the full policy replays "
              "faithfully on every trial (Section 5.5's\nrr-vs-tsan11rec "
              "trade-off).\n");
  return 0;
}
