//===-- bench/table2_httpd.cpp - Table 2 reproduction --------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces Table 2: MiniHttpd throughput and race rate under the eight
// tool configurations of Section 5.2, plus the demo-size observations
// (about 4.8 KB/request for tsan11rec vs 0.3 KB/request plus a constant
// for rr). Throughput is queries per *virtual* second: the host has one
// CPU, so parallelism effects live in the deterministic cost model (see
// DESIGN.md and env/CostModel.h).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/httpd/Httpd.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 3);
  const int Connections = envInt("TSR_HTTPD_CONNS", 10);
  const int PerConnection = envInt("TSR_HTTPD_PERCONN", 60);
  const int Total = Connections * PerConnection;

  const RecordPolicy Sparse = RecordPolicy::httpd();
  std::vector<ToolConfig> Tools = {
      {"native", presets::native()},
      {"rr", presets::rrSim(Mode::Record)},
      {"tsan11", presets::tsan11()},
      {"tsan11+rr", presets::tsan11PlusRr(Mode::Record)},
      {"rnd", presets::tsan11rec(StrategyKind::Random)},
      {"queue", presets::tsan11rec(StrategyKind::Queue)},
      {"rnd+rec",
       presets::tsan11rec(StrategyKind::Random, Mode::Record, Sparse)},
      {"queue+rec",
       presets::tsan11rec(StrategyKind::Queue, Mode::Record, Sparse)},
  };

  std::printf("Table 2: MiniHttpd, %d queries (%d connections x %d), "
              "%d runs per config\n",
              Total, Connections, PerConnection, Reps);
  std::printf("Throughput = queries per virtual second (mean, stddev); "
              "Rate = races per run\n\n");

  const std::vector<int> Widths = {11, 20, 9, 8, 12, 10};
  printRule(Widths);
  printRow({"Setup", "Throughput (q/vs)", "Overhead", "Rate",
            "Demo bytes", "B/request"},
           Widths);
  printRule(Widths);

  double NativeThroughput = 0;
  for (const ToolConfig &Tool : Tools) {
    SampleStats Throughput, Races, DemoBytes;
    for (int Rep = 0; Rep != Reps; ++Rep) {
      SessionConfig C = Tool.Config;
      seedFor(C, static_cast<uint64_t>(Rep), 21);
      Session S(C);
      S.env().addPeer("ab",
                      httpd::makeLoadGen(8080, Connections, PerConnection));
      httpd::HttpdConfig HC;
      HC.Workers = 10;
      HC.Connections = Connections;
      HC.TotalRequests = Total;
      HC.WorkPerRequestNs = 400000; // compute-bound requests
      httpd::HttpdResult HR;
      RunReport R = S.run([&] { HR = httpd::runServer(HC); });
      const double VirtualSec = static_cast<double>(HR.VirtualNs) * 1e-9;
      Throughput.add(VirtualSec > 0 ? HR.Served / VirtualSec : 0);
      Races.add(static_cast<double>(R.Races.size()));
      DemoBytes.add(static_cast<double>(R.RecordedDemo.totalSize()));
    }
    if (Tool.Name == "native")
      NativeThroughput = Throughput.mean();
    printRow({Tool.Name, meanSd(Throughput, 0),
              overhead(NativeThroughput, Throughput.mean()), // native/x
              fmt(Races.mean(), 1), fmt(DemoBytes.mean(), 0),
              fmt(DemoBytes.mean() / Total, 2)},
             Widths);
  }
  printRule(Widths);
  std::printf(
      "\nPaper shape check (Table 2): rr and rnd are the slow "
      "configurations\n(sequentialization / eager designation), queue is "
      "closest to tsan11;\nrecording costs little extra; tsan11rec demo "
      "bytes/request exceed rr's\nper-request bytes (sparse schedule+syscall "
      "log vs compact packet log).\n");
  return 0;
}
