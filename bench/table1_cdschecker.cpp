//===-- bench/table1_cdschecker.cpp - Table 1 reproduction ---------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces Table 1: the CDSchecker litmus benchmarks under four tool
// configurations — tsan11 + rr, tsan11, tsan11rec rnd, tsan11rec queue —
// reporting mean execution time (ms, with standard deviation) and the
// percentage of runs exhibiting a data race. The paper uses 1000 runs per
// cell; default here is 200 (override with TSR_BENCH_REPS).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/litmus/Litmus.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 200);

  std::vector<ToolConfig> Tools = {
      {"tsan11+rr", presets::tsan11PlusRr(Mode::Record)},
      {"tsan11", presets::tsan11()},
      {"tsan11rec rnd", presets::tsan11rec(StrategyKind::Random)},
      {"tsan11rec queue", presets::tsan11rec(StrategyKind::Queue)},
  };
  for (ToolConfig &T : Tools)
    T.Config.LivenessIntervalMs = 0; // closed programs; keep runs cheap

  std::printf("Table 1: CDSchecker litmus benchmarks, %d runs per cell\n",
              Reps);
  std::printf("Time = mean wall ms (stddev); Rate = %% of runs with a data "
              "race report\n\n");

  const std::vector<int> Widths = {16, 15, 7, 15, 7, 15, 7, 15, 7};
  printRule(Widths);
  printRow({"Test", "t11+rr Time", "Rate", "tsan11 Time", "Rate",
            "rnd Time", "Rate", "queue Time", "Rate"},
           Widths);
  printRule(Widths);

  for (const auto &Test : litmus::suite()) {
    std::vector<std::string> Cells = {Test.Name};
    for (const ToolConfig &Tool : Tools) {
      SampleStats TimeMs;
      int Racy = 0;
      for (int Rep = 0; Rep != Reps; ++Rep) {
        SessionConfig C = Tool.Config;
        seedFor(C, static_cast<uint64_t>(Rep));
        Session S(C);
        RunReport R = S.run(Test.Body);
        TimeMs.add(R.WallSeconds * 1e3);
        if (!R.Races.empty())
          ++Racy;
      }
      Cells.push_back(meanSd(TimeMs, 2));
      Cells.push_back(fmt(100.0 * Racy / Reps, 1) + "%");
    }
    printRow(Cells, Widths);
  }
  printRule(Widths);
  std::printf("\nPaper shape check: tsan11rec rnd should race most often "
              "on most benchmarks;\nchase-lev-deque is the exception "
              "(its race needs a lopsided schedule, Section 5.1);\n"
              "ms-queue races under every configuration.\n");
  return 0;
}
