//===-- bench/fleet_throughput.cpp - Multi-session record service --------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures record-as-a-service capacity: a SessionPool records N
// concurrent MiniHttpd+LoadGen sessions (each with its own scheduler,
// environment and demo directory, all multiplexed through the shared
// async demo-writer backend) for N in {1, 8, 64, 256}. Reports
// sessions/sec, aggregate controlled ticks/sec and the amortised
// per-session overhead vs a solo recording; verifies that a fleet
// session's demo is bit-identical to the same workload recorded solo
// (Random strategy — the schedule is a pure function of the seeds) and
// that it replays with zero desync. Emits BENCH_fleet_throughput.json.
//
// The host has one CPU, so "concurrent" means all N sessions are live in
// one process at once (every scheduler, every straggler registry, every
// stream multiplexed) while the OS timeslices them; per-session overhead
// is therefore the amortised batch cost (BatchWall / N) / SoloWall, the
// fleet analogue of throughput per session.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/httpd/Httpd.h"
#include "runtime/SessionPool.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct FleetResult {
  size_t Sessions = 0;
  SampleStats WallMs;
  SampleStats SessionsPerSec;
  SampleStats AggTicksPerSec;
  uint64_t HardDesyncs = 0;
  uint64_t Deadlocks = 0;
  bool DemoBitIdentical = false; ///< session-0 streams == solo streams
  bool ReplayClean = false;      ///< session-0 demo replays with no desync
};

httpd::HttpdConfig serverConfig() {
  httpd::HttpdConfig HC;
  HC.Workers = 2;
  HC.Connections = 2;
  HC.TotalRequests = 2 * envInt("TSR_BENCH_FLEET_PERCONN", 8);
  return HC;
}

SessionConfig sessionConfig(uint64_t SessionIndex) {
  SessionConfig C = presets::tsan11rec(StrategyKind::Random, Mode::Record,
                                       RecordPolicy::httpd());
  seedFor(C, SessionIndex, 57);
  C.LivenessIntervalMs = 0; // one fewer OS thread per session
  C.WatchdogTimeoutMs = 120000; // fleets timeslice one CPU; be patient
  return C;
}

void setupWorld(Session &S) {
  const httpd::HttpdConfig HC = serverConfig();
  S.env().addPeer("ab", httpd::makeLoadGen(HC.Port, HC.Connections,
                                           HC.TotalRequests / HC.Connections));
}

void serveOnce() { (void)httpd::runServer(serverConfig()); }

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

bool streamsIdentical(const std::string &DirA, const std::string &DirB) {
  for (unsigned I = 0; I != NumStreamKinds; ++I) {
    const char *Name = streamName(static_cast<StreamKind>(I));
    const std::vector<uint8_t> A = readFile(DirA + "/" + Name);
    if (A.empty() || A != readFile(DirB + "/" + Name))
      return false;
  }
  return true;
}

/// Records session 0's workload through a plain solo Session (its own
/// synchronous writer) into \p Dir; returns the wall milliseconds.
double recordSolo(const std::string &Dir) {
  std::filesystem::remove_all(Dir);
  SessionConfig C = sessionConfig(0);
  C.Flush.Directory = Dir;
  C.Flush.EveryTicks = 64;
  Session S(C);
  setupWorld(S);
  const auto T0 = std::chrono::steady_clock::now();
  RunReport R = S.run(serveOnce);
  const double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
  if (R.Deadlocked || R.Desync == DesyncKind::Hard)
    std::fprintf(stderr, "solo recording unhealthy: %s\n",
                 R.DesyncInfo.Message.c_str());
  return Ms;
}

FleetResult measureFleet(size_t N, int Reps, const std::string &SoloDir) {
  FleetResult Out;
  Out.Sessions = N;
  const std::string Root = std::filesystem::temp_directory_path().string() +
                           "/tsr-bench-fleet-" + std::to_string(N);
  for (int Rep = 0; Rep != Reps; ++Rep) {
    std::filesystem::remove_all(Root);
    SessionPool::Options PO;
    PO.DemoRoot = Root;
    PO.FlushEveryTicks = 64;
    PO.Concurrency = static_cast<unsigned>(N); // all N live at once
    SessionPool Pool(PO);
    for (size_t I = 0; I != N; ++I) {
      PoolSessionSpec Spec;
      char Name[32];
      std::snprintf(Name, sizeof(Name), "httpd-%03zu", I);
      Spec.Name = Name;
      Spec.Config = sessionConfig(I);
      Spec.Setup = setupWorld;
      Spec.Body = serveOnce;
      Pool.submit(std::move(Spec));
    }
    FleetReport Fleet = Pool.runAll();
    const double Ms = Fleet.WallSeconds * 1000.0;
    Out.WallMs.add(Ms);
    Out.SessionsPerSec.add(static_cast<double>(N) / Fleet.WallSeconds);
    Out.AggTicksPerSec.add(
        static_cast<double>(Fleet.Totals.counterOr("sched.ticks")) /
        Fleet.WallSeconds);
    Out.HardDesyncs += Fleet.HardDesyncs;
    Out.Deadlocks += Fleet.Deadlocks;

    if (Rep + 1 == Reps) {
      // Session 0 runs the solo recording's exact config and seeds: its
      // fleet demo must be byte-identical despite 5 * N streams having
      // shared one backend writer thread.
      const std::string Dir0 = Root + "/httpd-000";
      Out.DemoBitIdentical = streamsIdentical(SoloDir, Dir0);
      Demo D;
      std::string Error;
      if (D.loadFromDirectory(Dir0, Error) && !D.truncated()) {
        SessionConfig RC = sessionConfig(0);
        RC.ExecMode = Mode::Replay;
        RC.Flush = RecordFlushPolicy();
        RC.ReplayDemo = &D;
        Session RS(RC);
        setupWorld(RS);
        RunReport RR = RS.run(serveOnce);
        Out.ReplayClean = RR.Desync == DesyncKind::None && !RR.Deadlocked;
      } else {
        std::fprintf(stderr, "fleet-%zu: cannot load %s: %s\n", N,
                     Dir0.c_str(), Error.c_str());
      }
    }
    std::filesystem::remove_all(Root);
  }
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 3);
  const int MaxSessions = envInt("TSR_BENCH_FLEET_MAX", 256);
  const httpd::HttpdConfig HC = serverConfig();

  std::printf("Fleet recording throughput: N concurrent MiniHttpd+LoadGen "
              "record sessions\nin one process (%d workers, %d connections, "
              "%d requests each; %d reps)\n\n",
              HC.Workers, HC.Connections, HC.TotalRequests, Reps);

  const std::string SoloDir =
      std::filesystem::temp_directory_path().string() + "/tsr-bench-fleet-solo";
  SampleStats SoloWallMs;
  for (int Rep = 0; Rep != Reps; ++Rep)
    SoloWallMs.add(recordSolo(SoloDir));

  std::vector<FleetResult> Results;
  for (size_t N : {size_t(1), size_t(8), size_t(64), size_t(256)}) {
    if (N > static_cast<size_t>(MaxSessions))
      break;
    Results.push_back(measureFleet(N, Reps, SoloDir));
  }
  std::filesystem::remove_all(SoloDir);

  const std::vector<int> W = {10, 16, 14, 16, 12, 10, 8};
  printRule(W);
  printRow({"sessions", "wall ms", "sessions/s", "agg ticks/s",
            "overhead", "demo ==", "replay"},
           W);
  printRule(W);
  const double Solo = SoloWallMs.mean();
  for (const FleetResult &R : Results) {
    const double Amortised =
        R.WallMs.mean() / static_cast<double>(R.Sessions) / Solo;
    printRow({std::to_string(R.Sessions), meanSd(R.WallMs, 1),
              meanSd(R.SessionsPerSec, 0), meanSd(R.AggTicksPerSec, 0),
              fmt(Amortised, 3) + "x", R.DemoBitIdentical ? "yes" : "NO",
              R.ReplayClean ? "clean" : "DESYNC"},
             W);
  }
  printRule(W);
  std::printf("\noverhead = amortised per-session cost (batch wall / N) / "
              "solo wall; 1.0x = batching\nis free. demo == : the fleet "
              "session sharing the solo run's seeds produced a\nbyte-"
              "identical demo through the shared backend.\n");

  FILE *F = std::fopen("BENCH_fleet_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_fleet_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"fleet_throughput\",\n"
               "  \"workload\": \"httpd\",\n  \"reps\": %d,\n"
               "  \"requests_per_session\": %d,\n"
               "  \"solo_wall_ms\": %s,\n"
               "  \"max_sessions\": %zu,\n  \"fleet\": [\n",
               Reps, HC.TotalRequests, SoloWallMs.toJson(8).c_str(),
               Results.empty() ? size_t(0) : Results.back().Sessions);
  for (size_t I = 0; I != Results.size(); ++I) {
    const FleetResult &R = Results[I];
    const double Amortised =
        Solo > 0 ? R.WallMs.mean() / static_cast<double>(R.Sessions) / Solo
                 : 0.0;
    std::fprintf(
        F,
        "    {\"name\": \"fleet-%zu\", \"sessions\": %zu,\n"
        "     \"sessions_per_sec\": %.2f, \"agg_ticks_per_sec\": %.0f,\n"
        "     \"per_session_overhead_vs_solo\": %.3f,\n"
        "     \"hard_desyncs\": %llu, \"deadlocks\": %llu,\n"
        "     \"demo_bit_identical_to_solo\": %s, \"replay_identical\": %s,\n"
        "     \"wall_ms\": %s}%s\n",
        R.Sessions, R.Sessions, R.SessionsPerSec.mean(),
        R.AggTicksPerSec.mean(), Amortised,
        static_cast<unsigned long long>(R.HardDesyncs),
        static_cast<unsigned long long>(R.Deadlocks),
        R.DemoBitIdentical ? "true" : "false",
        R.DemoBitIdentical && R.ReplayClean ? "true" : "false",
        R.WallMs.toJson(8).c_str(), I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_fleet_throughput.json\n");
  return 0;
}
