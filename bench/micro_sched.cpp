//===-- bench/micro_sched.cpp - Runtime primitive microbenchmarks --------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// google-benchmark microbenchmarks for the runtime's primitives: the
// Wait()/Tick() critical-section turnaround, atomic-model operations,
// shadow-memory accesses, mutex round-trips, demo codec throughput and
// PRNG draws. These quantify the constant factors behind the table
// benches.
//
//===----------------------------------------------------------------------===//

#include "apps/common/Util.h"
#include "runtime/Tsr.h"
#include "support/Rle.h"

#include <benchmark/benchmark.h>

using namespace tsr;

namespace {

SessionConfig quietConfig(StrategyKind K) {
  SessionConfig C = presets::tsan11rec(K);
  C.Seed0 = 5;
  C.Seed1 = 6;
  C.Env.Seed0 = 7;
  C.Env.Seed1 = 8;
  C.LivenessIntervalMs = 0;
  return C;
}

/// Runs Fn(iterations) once inside a session and reports per-op time.
template <typename Fn>
void runInSession(benchmark::State &State, StrategyKind K, Fn Body) {
  for (auto _ : State) {
    State.PauseTiming();
    Session S(quietConfig(K));
    State.ResumeTiming();
    S.run([&] { Body(State.range(0)); });
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_AtomicLoadStore(benchmark::State &State) {
  runInSession(State, StrategyKind::Queue, [](int64_t N) {
    Atomic<int> A(0);
    for (int64_t I = 0; I != N; ++I) {
      A.store(static_cast<int>(I), std::memory_order_release);
      benchmark::DoNotOptimize(A.load(std::memory_order_acquire));
    }
  });
}
BENCHMARK(BM_AtomicLoadStore)->Arg(2000);

void BM_MutexRoundTrip(benchmark::State &State) {
  runInSession(State, StrategyKind::Queue, [](int64_t N) {
    Mutex M;
    for (int64_t I = 0; I != N; ++I) {
      M.lock();
      M.unlock();
    }
  });
}
BENCHMARK(BM_MutexRoundTrip)->Arg(2000);

void BM_PlainAccessShadow(benchmark::State &State) {
  runInSession(State, StrategyKind::Queue, [](int64_t N) {
    Var<int> V(0);
    for (int64_t I = 0; I != N; ++I) {
      V.set(static_cast<int>(I));
      benchmark::DoNotOptimize(V.get());
    }
  });
}
BENCHMARK(BM_PlainAccessShadow)->Arg(20000);

void BM_CriticalSectionHandoff(benchmark::State &State) {
  // Two threads alternating on an atomic: every operation transfers the
  // designation, so this measures the Wait/Tick handoff cost.
  runInSession(State, StrategyKind::Queue, [](int64_t N) {
    Atomic<int> Turn(0);
    Thread T = Thread::spawn([&] {
      for (int64_t I = 0; I != N; ++I)
        Turn.fetchAdd(1, std::memory_order_acq_rel);
    });
    for (int64_t I = 0; I != N; ++I)
      Turn.fetchAdd(1, std::memory_order_acq_rel);
    T.join();
  });
}
BENCHMARK(BM_CriticalSectionHandoff)->Arg(1000);

void BM_SyscallRecorded(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    SessionConfig C = quietConfig(StrategyKind::Queue);
    C.ExecMode = Mode::Record;
    C.Policy = RecordPolicy::httpd();
    Session S(C);
    State.ResumeTiming();
    S.run([&] {
      for (int64_t I = 0; I != State.range(0); ++I)
        benchmark::DoNotOptimize(sys::clockNs());
    });
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_SyscallRecorded)->Arg(2000);

void BM_RleRoundTrip(benchmark::State &State) {
  std::vector<uint8_t> Data(static_cast<size_t>(State.range(0)));
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<uint8_t>((I / 13) & 0xFF);
  for (auto _ : State) {
    ByteWriter W;
    rle::encodeBytes(W, Data);
    ByteReader R(W.take());
    std::vector<uint8_t> Out;
    rle::decodeBytes(R, Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_RleRoundTrip)->Arg(1 << 16);

void BM_PrngDraw(benchmark::State &State) {
  Prng Rng(1, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Rng.nextBelow(17));
}
BENCHMARK(BM_PrngDraw);

} // namespace

BENCHMARK_MAIN();
