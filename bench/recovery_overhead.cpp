//===-- bench/recovery_overhead.cpp - Self-healing replay cost -----------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Two questions about the recovery subsystem (DESIGN.md section 11):
//
//  1. What does having the machinery *armed but idle* cost? Replay a
//     clean pbzip demo under Strict and under Adaptive: the traces are
//     identical, so any throughput gap is pure bookkeeping overhead
//     (target: <= 1.02x).
//
//  2. How often does Adaptive actually save a divergent replay? A seeded
//     sweep of divergent echo clients (random skipped and extra calls
//     against a fixed recording) counts the runs that complete without a
//     hard desync.
//
// Emits BENCH_recovery.json alongside the human-readable tables.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/pbzip/Pbzip.h"
#include "support/Prng.h"
#include "support/Recovery.h"

#include <chrono>
#include <memory>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct ModeResult {
  std::string Name;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  uint64_t Ticks = 0;
  uint64_t Actions = 0; ///< Recovery actions of the last repetition.
};

SessionConfig pbzipConfig(Mode M) {
  SessionConfig C =
      presets::tsan11rec(StrategyKind::Queue, M, RecordPolicy::full());
  seedFor(C, 0, 47);
  C.LivenessIntervalMs = 0;
  return C;
}

void runPbzip(Session &S, int InputRepeats, RunReport &Out) {
  pbzip::PbzipConfig PC;
  PC.Threads = 4;
  PC.BlockSize = 512;
  std::vector<uint8_t> Input;
  for (int I = 0; I != InputRepeats; ++I) {
    const std::string Chunk =
        "recovery overhead benchmark " + std::to_string(I % 13) + " ";
    Input.insert(Input.end(), Chunk.begin(), Chunk.end());
  }
  S.env().putFile(PC.InputPath, Input);
  Out = S.run([&PC] { (void)pbzip::compressFile(PC); });
}

void measureReplayOnce(const Demo &D, RecoveryMode Mode, int InputRepeats,
                       ModeResult &Out) {
  SessionConfig C = pbzipConfig(Mode::Replay);
  C.ReplayDemo = &D;
  C.Recovery.Mode = Mode;
  Session S(C);
  RunReport R;
  const auto Start = std::chrono::steady_clock::now();
  runPbzip(S, InputRepeats, R);
  const double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  Out.WallMs.add(Ms);
  Out.TicksPerSec.add(static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0));
  Out.Ticks = R.Sched.Ticks;
  Out.Actions = R.Recovered.Actions.size();
}

// --- The divergent-client sweep -----------------------------------------

class Echo final : public Peer {
public:
  void onMessage(PeerApi &Api, uint64_t Conn,
                 const std::vector<uint8_t> &Data) override {
    Api.send(Conn, Data);
  }
};

RecordPolicy clientPolicy() {
  return RecordPolicy::httpd().enable(SyscallKind::Close);
}

/// The echo client, parameterisable into divergence: \p SkipMask drops
/// individual sends and \p ExtraRecvs inserts calls the recording never
/// saw.
void client(uint32_t SkipMask, unsigned ExtraRecvs) {
  const int Fd = sys::socket();
  (void)sys::connect(Fd, 7001);
  for (int I = 0; I != 8; ++I) {
    if (SkipMask & (1u << I))
      continue;
    const uint8_t Msg[2] = {'b', static_cast<uint8_t>('0' + I)};
    (void)sys::send(Fd, Msg, sizeof Msg);
  }
  uint8_t Buf[4];
  for (unsigned I = 0; I != ExtraRecvs; ++I)
    (void)sys::recv(Fd, Buf, sizeof Buf);
  (void)sys::close(Fd);
}

SessionConfig clientConfig(Mode M) {
  SessionConfig C = presets::tsan11rec(StrategyKind::Queue, M, clientPolicy());
  seedFor(C, 1, 53);
  C.LivenessIntervalMs = 0;
  return C;
}

struct SweepResult {
  unsigned Runs = 0;
  unsigned Successes = 0;
  uint64_t Actions = 0;
};

SweepResult divergenceSweep(const Demo &D, unsigned Runs) {
  SweepResult Out;
  Out.Runs = Runs;
  for (unsigned I = 0; I != Runs; ++I) {
    // Each seed picks a divergence profile: up to three dropped sends
    // and up to four extra recvs (both zero reproduces the recording).
    Prng Rng(0xBE5EEDull, I);
    uint32_t SkipMask = 0;
    for (unsigned K = Rng.nextBelow(4); K; --K)
      SkipMask |= 1u << Rng.nextBelow(8);
    const unsigned ExtraRecvs = static_cast<unsigned>(Rng.nextBelow(5));

    SessionConfig C = clientConfig(Mode::Replay);
    C.ReplayDemo = &D;
    C.Recovery.Mode = RecoveryMode::Adaptive;
    Session S(C);
    RunReport R = S.run([&] { client(SkipMask, ExtraRecvs); });
    if (R.Desync != DesyncKind::Hard)
      ++Out.Successes;
    Out.Actions += R.Recovered.Actions.size();
  }
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int InputRepeats = envInt("TSR_BENCH_INPUT_REPEATS", 2000);
  const unsigned SweepRuns =
      static_cast<unsigned>(envInt("TSR_BENCH_RECOVERY_RUNS", 40));

  // Record the clean pbzip demo both replay modes consume.
  SessionConfig RC = pbzipConfig(Mode::Record);
  RunReport Rec;
  {
    Session S(RC);
    runPbzip(S, InputRepeats, Rec);
  }

  std::printf("Replay throughput with the recovery machinery off vs idle\n"
              "(pbzip, %d reps)\n\n",
              Reps);
  std::vector<ModeResult> Modes(2);
  Modes[0].Name = "strict";
  Modes[1].Name = "adaptive-idle";
  // Interleave the repetitions so host-load drift lands on both modes
  // evenly instead of biasing whichever ran second.
  for (int Rep = 0; Rep != Reps; ++Rep) {
    measureReplayOnce(Rec.RecordedDemo, RecoveryMode::Strict, InputRepeats,
                      Modes[0]);
    measureReplayOnce(Rec.RecordedDemo, RecoveryMode::Adaptive, InputRepeats,
                      Modes[1]);
  }

  const std::vector<int> W = {15, 18, 14, 10, 9};
  printRule(W);
  printRow({"mode", "ticks/sec", "wall ms", "overhead", "actions"}, W);
  printRule(W);
  const double Base = Modes[0].TicksPerSec.mean();
  for (const ModeResult &M : Modes)
    printRow({M.Name, meanSd(M.TicksPerSec, 0), meanSd(M.WallMs, 1),
              overhead(Base, M.TicksPerSec.mean()),
              std::to_string(M.Actions)},
             W);
  printRule(W);
  std::printf("\noverhead = strict throughput / mode throughput; a clean "
              "demo replays\nidentically in every mode, so the gap is pure "
              "recovery bookkeeping.\n\n");

  // The divergent-client sweep.
  SessionConfig CC = clientConfig(Mode::Record);
  RunReport ClientRec;
  {
    Session S(CC);
    S.env().addPeer("echo", std::make_unique<Echo>(), 7001);
    ClientRec = S.run([] { client(0, 0); });
  }
  const SweepResult Sweep = divergenceSweep(ClientRec.RecordedDemo, SweepRuns);
  std::printf("Adaptive recovery over %u seeded divergent replays: "
              "%u/%u completed without a hard desync (%.1f%%), "
              "%llu recovery actions total\n",
              Sweep.Runs, Sweep.Successes, Sweep.Runs,
              Sweep.Runs ? 100.0 * Sweep.Successes / Sweep.Runs : 0.0,
              static_cast<unsigned long long>(Sweep.Actions));

  FILE *F = std::fopen("BENCH_recovery.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::fprintf(F, "{\n  \"bench\": \"recovery_overhead\",\n"
                  "  \"workload\": \"pbzip+echo\",\n  \"reps\": %d,\n"
                  "  \"modes\": [\n",
               Reps);
  for (size_t I = 0; I != Modes.size(); ++I) {
    const ModeResult &M = Modes[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"overhead_vs_strict\": %.3f, "
        "\"ticks\": %llu, \"actions\": %llu,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        M.Name.c_str(),
        M.TicksPerSec.mean() > 0 ? Base / M.TicksPerSec.mean() : 0.0,
        static_cast<unsigned long long>(M.Ticks),
        static_cast<unsigned long long>(M.Actions),
        M.TicksPerSec.toJson(8).c_str(), M.WallMs.toJson(8).c_str(),
        I + 1 == Modes.size() ? "" : ",");
  }
  std::fprintf(F,
               "  ],\n  \"recovered_runs\": {\"runs\": %u, "
               "\"successes\": %u, \"success_rate\": %.3f, "
               "\"actions\": %llu}\n}\n",
               Sweep.Runs, Sweep.Successes,
               Sweep.Runs ? static_cast<double>(Sweep.Successes) / Sweep.Runs
                          : 0.0,
               static_cast<unsigned long long>(Sweep.Actions));
  std::fclose(F);
  std::printf("\nwrote BENCH_recovery.json\n");
  return 0;
}
