//===-- bench/table3_parsec.cpp - Tables 3 and 4 reproduction ------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces Table 3 (execution times for pbzip and the PARSEC kernels
// under eight tool configurations) and Table 4 (the same data as overhead
// multipliers vs native). Times are virtual milliseconds from the
// deterministic cost model; the shape — which configuration wins on which
// workload — is the comparison target (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/parsec/Kernels.h"
#include "apps/pbzip/Pbzip.h"

using namespace tsr;
using namespace tsr::bench;

namespace {

/// One benchmark row: pbzip or a kernel.
struct Program {
  std::string Name;
  std::function<void(Session &)> Prepare;
  std::function<void()> Body;
};

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 3);
  const int Threads = envInt("TSR_PARSEC_THREADS", 4);
  const int Size = envInt("TSR_PARSEC_SIZE", 48);

  // Instrumentation factors per workload class: tsan's overhead tracks
  // shadow-checked memory traffic, which differs per benchmark (the paper
  // sees 1.3x for pbzip but 20x+ for fluidanimate/streamcluster).
  auto TsanFactorFor = [](const std::string &Name) {
    if (Name == "pbzip")
      return 1.4;
    if (Name == "blackscholes")
      return 2.0;
    if (Name == "ferret")
      return 10.0;
    if (Name == "bodytrack")
      return 12.0;
    return 18.0; // fluidanimate, streamcluster
  };

  std::vector<Program> Programs;
  {
    pbzip::PbzipConfig PC;
    PC.Threads = Threads;
    PC.BlockSize = 2048;
    Programs.push_back(
        {"pbzip",
         [PC](Session &S) {
           std::vector<uint8_t> Input;
           for (int I = 0; I != 4000; ++I) {
             const std::string Chunk =
                 "block payload " + std::to_string(I % 23) + " data ";
             Input.insert(Input.end(), Chunk.begin(), Chunk.end());
           }
           S.env().putFile(PC.InputPath, Input);
         },
         [PC] { (void)pbzip::compressFile(PC); }});
  }
  for (const auto &K : parsec::kernels()) {
    parsec::KernelConfig KC;
    KC.Threads = Threads;
    KC.Size = Size;
    Programs.push_back(
        {K.Name, [](Session &) {}, [K, KC] { (void)K.Run(KC); }});
  }

  const RecordPolicy Sparse = RecordPolicy::httpd();
  auto ToolsFor = [&](const std::string &Name) {
    const double F = TsanFactorFor(Name);
    std::vector<ToolConfig> Tools = {
        {"native", presets::native()},
        {"tsan11", presets::tsan11(F)},
        {"rr", presets::rrSim(Mode::Record)},
        {"tsan11+rr", presets::tsan11PlusRr(Mode::Record, F)},
        {"rnd", presets::tsan11rec(StrategyKind::Random, Mode::Free,
                                   RecordPolicy::none(), F)},
        {"queue", presets::tsan11rec(StrategyKind::Queue, Mode::Free,
                                     RecordPolicy::none(), F)},
        {"rnd+rec", presets::tsan11rec(StrategyKind::Random, Mode::Record,
                                       Sparse, F)},
        {"queue+rec", presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         Sparse, F)},
    };
    return Tools;
  };

  std::printf("Table 3: virtual execution time (ms), %d threads, %d runs "
              "per cell\n\n",
              Threads, Reps);
  const std::vector<int> Widths = {14, 13, 13, 13, 13, 13, 13, 13, 13};
  std::vector<std::string> Header = {"Program",  "native", "tsan11",
                                     "rr",       "t11+rr", "rnd",
                                     "queue",    "rnd+rec", "queue+rec"};
  printRule(Widths);
  printRow(Header, Widths);
  printRule(Widths);

  // Collect means for Table 4.
  std::vector<std::vector<double>> Means;
  for (const Program &P : Programs) {
    std::vector<std::string> Cells = {P.Name};
    std::vector<double> RowMeans;
    for (const ToolConfig &Tool : ToolsFor(P.Name)) {
      SampleStats Ms;
      for (int Rep = 0; Rep != Reps; ++Rep) {
        SessionConfig C = Tool.Config;
        seedFor(C, static_cast<uint64_t>(Rep), 77);
        Session S(C);
        P.Prepare(S);
        RunReport R = S.run(P.Body);
        Ms.add(static_cast<double>(R.VirtualNs) * 1e-6);
      }
      Cells.push_back(meanSd(Ms, 1));
      RowMeans.push_back(Ms.mean());
    }
    Means.push_back(RowMeans);
    printRow(Cells, Widths);
  }
  printRule(Widths);

  std::printf("\nTable 4: overhead vs native (computed from Table 3)\n\n");
  printRule(Widths);
  printRow(Header, Widths);
  printRule(Widths);
  for (size_t I = 0; I != Programs.size(); ++I) {
    std::vector<std::string> Cells = {Programs[I].Name};
    for (double M : Means[I])
      Cells.push_back(overhead(M, Means[I][0]));
    printRow(Cells, Widths);
  }
  printRule(Widths);
  std::printf(
      "\nPaper shape check (Tables 3/4): pbzip and blackscholes stay cheap "
      "under\ntsan11rec but rr costs more than tsan11rec on blackscholes "
      "(high\nparallelism / low communication, Section 5.3); fluidanimate "
      "and\nstreamcluster are dominated by instrumentation and visible-op "
      "chaining;\nbodytrack is the random strategy's worst case; recording "
      "adds little.\n");
  return 0;
}
