//===-- bench/demo_size.cpp - Demo size scaling (E6) ---------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces the demo-size observations of Sections 5.2 and 5.4: demo
// size grows linearly with the number of httpd requests (the paper
// measures ~4.8 KB/request for tsan11rec and ~0.3 KB/request + 3.6 MB
// constant for rr), and per-stream breakdowns show where the bytes go
// (the game's demo was dominated by SYSCALL data).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/game/Game.h"
#include "apps/httpd/Httpd.h"

using namespace tsr;
using namespace tsr::bench;

namespace {

Demo recordHttpd(StrategyKind K, int Requests) {
  SessionConfig C = presets::tsan11rec(K, Mode::Record,
                                       RecordPolicy::httpd());
  seedFor(C, static_cast<uint64_t>(Requests), 3);
  Session S(C);
  const int Conns = 10;
  S.env().addPeer("ab", httpd::makeLoadGen(8080, Conns, Requests / Conns));
  httpd::HttpdConfig HC;
  HC.Workers = 10;
  HC.TotalRequests = Requests;
  RunReport R = S.run([&] { (void)httpd::runServer(HC); });
  return R.RecordedDemo;
}

void printBreakdown(const char *Label, const Demo &D, int Unit) {
  std::printf("  %-22s total=%8zu  META=%zu QUEUE=%zu SIGNAL=%zu "
              "SYSCALL=%zu ASYNC=%zu",
              Label, D.totalSize(), D.streamSize(StreamKind::Meta),
              D.streamSize(StreamKind::Queue),
              D.streamSize(StreamKind::Signal),
              D.streamSize(StreamKind::Syscall),
              D.streamSize(StreamKind::Async));
  if (Unit)
    std::printf("  (%.1f B/request)",
                static_cast<double>(D.totalSize()) / Unit);
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Demo size scaling (Sections 5.2 / 5.4)\n\n");

  std::printf("MiniHttpd, queue strategy, sparse policy:\n");
  std::vector<int> Sizes = {100, 200, 400, 800};
  double PrevBytes = 0;
  int PrevReqs = 0;
  for (int Requests : Sizes) {
    Demo D = recordHttpd(StrategyKind::Queue, Requests);
    printBreakdown(
        bench::fmt(Requests, 0).append(" requests").c_str(), D, Requests);
    if (PrevReqs) {
      const double Marginal = (static_cast<double>(D.totalSize()) -
                               PrevBytes) /
                              (Requests - PrevReqs);
      std::printf("  %-22s marginal cost: %.1f B/request\n", "", Marginal);
    }
    PrevBytes = static_cast<double>(D.totalSize());
    PrevReqs = Requests;
  }

  std::printf("\nMiniHttpd, random strategy (no QUEUE stream — the "
              "schedule lives in the seeds):\n");
  {
    Demo D = recordHttpd(StrategyKind::Random, 400);
    printBreakdown("400 requests", D, 400);
  }

  std::printf("\nMiniGame multiplayer, queue strategy, game policy "
              "(SYSCALL-dominated like the paper's 6.5 of 8 MB):\n");
  {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         RecordPolicy::game());
    seedFor(C, 4, 17);
    Session S(C);
    S.env().addPeer("server", game::makeGameServer(false),
                    game::GameServerPort);
    game::GameConfig GC;
    GC.Frames = 300;
    GC.FpsCap = 0;
    GC.Multiplayer = true;
    RunReport R = S.run([&] { (void)game::runGame(GC); });
    printBreakdown("300 frames", R.RecordedDemo, 0);
    const size_t Sys = R.RecordedDemo.streamSize(StreamKind::Syscall);
    std::printf("  SYSCALL share: %.0f%%\n",
                100.0 * Sys / R.RecordedDemo.totalSize());
  }

  std::printf("\nPaper shape check: httpd demo size grows linearly with "
              "requests; the random\nstrategy stores no schedule data "
              "(Section 4.2); the game demo is dominated\nby syscall "
              "payloads (Section 5.4).\n");
  return 0;
}
