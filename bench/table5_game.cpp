//===-- bench/table5_game.cpp - Table 5 reproduction ---------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces Table 5: MiniGame (the QuakeSpasm analogue) played uncapped
// for a fixed number of frames under six tool configurations, reporting
// the fps distribution (min / 25th / median / 75th / max / mean) from the
// virtual clock, plus the mean-fps overhead vs native. Five "plays" per
// configuration with different environment seeds stand in for the paper's
// five 90-second play sessions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/game/Game.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  const int Plays = envInt("TSR_BENCH_REPS", 5);
  const int Frames = envInt("TSR_GAME_FRAMES", 240);

  const RecordPolicy Sparse = RecordPolicy::game();
  std::vector<ToolConfig> Tools = {
      {"native", presets::native()},
      {"tsan11", presets::tsan11(2.5)},
      {"rnd", presets::tsan11rec(StrategyKind::Random, Mode::Free,
                                 RecordPolicy::none(), 2.5)},
      {"queue", presets::tsan11rec(StrategyKind::Queue, Mode::Free,
                                   RecordPolicy::none(), 2.5)},
      {"rnd+rec",
       presets::tsan11rec(StrategyKind::Random, Mode::Record, Sparse, 2.5)},
      {"queue+rec",
       presets::tsan11rec(StrategyKind::Queue, Mode::Record, Sparse, 2.5)},
  };

  std::printf("Table 5: MiniGame uncapped fps, %d frames x %d plays per "
              "config\n\n",
              Frames, Plays);
  const std::vector<int> Widths = {11, 7, 7, 8, 7, 7, 8, 9};
  printRule(Widths);
  printRow({"Setup", "Min", "25th", "Median", "75th", "Max", "Mean",
            "Overhead"},
           Widths);
  printRule(Widths);

  double NativeMean = 0;
  for (const ToolConfig &Tool : Tools) {
    SampleStats Fps;
    for (int Play = 0; Play != Plays; ++Play) {
      SessionConfig C = Tool.Config;
      seedFor(C, static_cast<uint64_t>(Play), 5);
      Session S(C);
      game::GameConfig GC;
      GC.Frames = Frames;
      GC.FpsCap = 0;
      GC.Audio = true;
      GC.Multiplayer = false;
      game::GameResult GR;
      S.run([&] { GR = game::runGame(GC); });
      for (double F : GR.FpsSamples)
        Fps.add(F);
    }
    if (Tool.Name == "native")
      NativeMean = Fps.mean();
    printRow({Tool.Name, fmt(Fps.min(), 0), fmt(Fps.quantile(0.25), 0),
              fmt(Fps.median(), 0), fmt(Fps.quantile(0.75), 0),
              fmt(Fps.max(), 0), fmt(Fps.mean(), 1),
              overhead(NativeMean, Fps.mean())},
             Widths);
  }
  printRule(Widths);
  std::printf("\nPaper shape check (Table 5): instrumentation overhead is "
              "modest\n(a few x, against 60x+ elsewhere) and enabling "
              "recording costs little on top;\nthe fps distribution spreads "
              "with scene load as in the paper's quartiles.\n");
  return 0;
}
