//===-- bench/profile_overhead.cpp - Causal profiler overhead ------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures what schedule-aware causal profiling costs: record-mode tick
// throughput over the pbzip workload with profiling {off, on, on +
// telemetry streaming at a 1k-tick cadence}. The observability contract
// (DESIGN.md section 12): the disabled path — one branch on a null pointer
// per hook site — must stay within measurement noise of the baseline
// (1.00x), full profiling within 10%, and telemetry at the default cadence
// within a further 2%. Emits BENCH_profile_overhead.json with
// SampleStats::toJson distributions per mode.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/pbzip/Pbzip.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct ModeResult {
  std::string Name;
  bool Profiled = false;
  bool Telemetry = false;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  std::vector<double> PerRound; ///< ticks/sec, one entry per round.
  uint64_t Ticks = 0;           ///< Controlled ticks of the last repetition.
  uint64_t Segments = 0;        ///< Critical-path segments (last rep).
  uint64_t ContentionEdges = 0; ///< Contention matrix entries (last rep).
  uint64_t BlockedTicks = 0;    ///< Attributed blocked ticks (last rep).
  uint64_t TelemetryFrames = 0; ///< Frames streamed (last rep).
};

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V.empty() ? 0.0
                   : (V.size() % 2 ? V[V.size() / 2]
                                   : (V[V.size() / 2 - 1] + V[V.size() / 2]) /
                                         2.0);
}

/// Overhead of \p M vs the baseline: the modes run interleaved, one
/// repetition of each per round, so per-round ratios pair off host drift
/// (frequency scaling, neighbours) that a plain mean-of-means would read
/// as profiler cost. The median ratio then sheds the remaining outliers.
double overheadVsBase(const ModeResult &BaseMode, const ModeResult &M) {
  std::vector<double> Ratios;
  const size_t N = std::min(BaseMode.PerRound.size(), M.PerRound.size());
  for (size_t I = 0; I != N; ++I)
    if (M.PerRound[I] > 0)
      Ratios.push_back(BaseMode.PerRound[I] / M.PerRound[I]);
  return medianOf(Ratios);
}

/// One repetition of one mode; records the sample unless \p Warmup.
void runOnce(ModeResult &Out, int Rep, int InputRepeats, bool Warmup) {
  const std::string StreamPath =
      std::filesystem::temp_directory_path().string() +
      "/tsr-bench-profile-telemetry.jsonl";
  SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                       RecordPolicy::full());
  seedFor(C, static_cast<uint64_t>(Rep), 31);
  // Wall-clock liveness wakeups would inject extra ticks into slower
  // repetitions, corrupting the cross-mode tick/sec comparison; without
  // them the schedule — and so the tick count — is a pure function of the
  // seed, identical across modes.
  C.LivenessIntervalMs = 0;
  C.Profile.Enabled = Out.Profiled;
  if (Out.Telemetry) {
    C.Telemetry.Enabled = true;
    C.Telemetry.EveryTicks = 1000;
    C.Telemetry.Path = StreamPath;
  }
  Session S(C);
  pbzip::PbzipConfig PC;
  PC.Threads = 4;
  PC.BlockSize = 512;
  std::vector<uint8_t> Input;
  for (int I = 0; I != InputRepeats; ++I) {
    const std::string Chunk =
        "causal profiling benchmark " + std::to_string(I % 13) + " ";
    Input.insert(Input.end(), Chunk.begin(), Chunk.end());
  }
  S.env().putFile(PC.InputPath, Input);
  const auto Start = std::chrono::steady_clock::now();
  RunReport R = S.run([&PC] { (void)pbzip::compressFile(PC); });
  const double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  std::error_code Ec;
  std::filesystem::remove(StreamPath, Ec);
  if (Warmup)
    return;
  Out.WallMs.add(Ms);
  const double Tps = static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0);
  Out.TicksPerSec.add(Tps);
  Out.PerRound.push_back(Tps);
  Out.Ticks = R.Sched.Ticks;
  Out.Segments = R.Profile.Core.CriticalPath.size();
  Out.ContentionEdges = R.Profile.Core.Contention.size();
  Out.BlockedTicks = R.Profile.BlockedTicks;
  Out.TelemetryFrames = R.Metrics.counterOr("telemetry.frames", 0);
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int InputRepeats = envInt("TSR_BENCH_INPUT_REPEATS", 2000);

  std::printf("Schedule-aware causal profiling overhead\n(pbzip record "
              "mode, %d reps, ~%d KB input)\n\n",
              Reps, InputRepeats * 29 / 1024);

  std::vector<ModeResult> Results(3);
  Results[0].Name = "profile-off";
  Results[1].Name = "profile-on";
  Results[1].Profiled = true;
  Results[2].Name = "profile-on+telemetry";
  Results[2].Profiled = Results[2].Telemetry = true;

  // Interleave repetitions round-robin across modes so slow drift in host
  // throughput (frequency scaling, cache warming) hits every mode equally
  // instead of flattering whichever mode runs last. The first round is a
  // discarded warm-up paying one-time costs (page faults, allocator
  // growth).
  for (int Rep = -1; Rep != Reps; ++Rep)
    for (ModeResult &M : Results)
      runOnce(M, Rep < 0 ? 0 : Rep, InputRepeats, /*Warmup=*/Rep < 0);

  const std::vector<int> W = {22, 18, 14, 10, 10, 10};
  printRule(W);
  printRow({"mode", "ticks/sec", "wall ms", "overhead", "segments",
            "frames"},
           W);
  printRule(W);
  for (const ModeResult &R : Results)
    printRow({R.Name, meanSd(R.TicksPerSec, 0), meanSd(R.WallMs, 1),
              overhead(overheadVsBase(Results[0], R), 1.0),
              std::to_string(R.Segments),
              std::to_string(R.TelemetryFrames)},
             W);
  printRule(W);
  std::printf("\noverhead = profile-off throughput / mode throughput "
              "(1.0x = free).\nContract: off-path 1.00x (one null-pointer "
              "branch per hook),\nfull profiling <= 1.10x, telemetry at a "
              "1k-tick cadence <= 2%% extra.\n");

  FILE *F = std::fopen("BENCH_profile_overhead.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_profile_overhead.json\n");
    return 1;
  }
  std::fprintf(F, "{\n  \"bench\": \"profile_overhead\",\n"
                  "  \"workload\": \"pbzip\",\n  \"reps\": %d,\n"
                  "  \"modes\": [\n",
               Reps);
  for (size_t I = 0; I != Results.size(); ++I) {
    const ModeResult &R = Results[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"ticks\": %llu, \"segments\": %llu, "
        "\"contention_edges\": %llu, \"blocked_ticks\": %llu, "
        "\"telemetry_frames\": %llu, \"overhead_vs_off\": %.3f,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(), static_cast<unsigned long long>(R.Ticks),
        static_cast<unsigned long long>(R.Segments),
        static_cast<unsigned long long>(R.ContentionEdges),
        static_cast<unsigned long long>(R.BlockedTicks),
        static_cast<unsigned long long>(R.TelemetryFrames),
        overheadVsBase(Results[0], R),
        R.TicksPerSec.toJson(8).c_str(), R.WallMs.toJson(8).c_str(),
        I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_profile_overhead.json\n");
  return 0;
}
