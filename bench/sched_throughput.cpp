//===-- bench/sched_throughput.cpp - Tick commit/wake throughput ---------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures the scheduler hot path on a contended atomic-counter workload:
// controlled-run tick throughput swept over {2, 4, 8} threads x
// {broadcast, targeted} wake policies x {mutex, pipelined} tick-commit
// modes x {random, queue} strategies. The schedule is identical under both
// wake policies and both commit modes (neither moves a scheduling
// decision); only the handoff cost differs. Repetitions run interleaved
// round-robin across all cells with a discarded warm-up round, and the
// speedup columns are medians of per-round paired ratios, so host drift
// (frequency scaling, neighbours) cancels instead of flattering whichever
// cell ran last. Emits BENCH_sched_throughput.json alongside the table.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <chrono>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct CellResult {
  std::string Name;
  const char *Policy = "";   ///< "targeted" | "broadcast"
  const char *Commit = "";   ///< "pipelined" | "mutex"
  const char *Strategy = ""; ///< "random" | "queue"
  StrategyKind Strat = StrategyKind::Random;
  WakePolicy Wake = WakePolicy::Targeted;
  TickCommitMode Mode = TickCommitMode::Mutex;
  int Threads = 0;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  std::vector<double> PerRound; ///< ticks/sec, one entry per round.
  uint64_t Ticks = 0;           ///< Controlled ticks of the last repetition.
  uint64_t SpuriousWakeups = 0; ///< Last repetition.
  uint64_t TargetedWakeups = 0;
  uint64_t BroadcastWakeups = 0;
  uint64_t FastPathCommits = 0;
  uint64_t SlowPathCommits = 0;
  uint64_t FastPathAborts = 0;
  double SpeedupVsBroadcast = 1.0; ///< vs broadcast at the same threads.
  double SpeedupVsMutex = 1.0;     ///< vs mutex commit, same cell otherwise.
};

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V.empty() ? 0.0
                   : (V.size() % 2 ? V[V.size() / 2]
                                   : (V[V.size() / 2 - 1] + V[V.size() / 2]) /
                                         2.0);
}

/// Speedup of \p M over \p Base as the median of per-round paired ratios:
/// the cells run interleaved, so each round's ratio sees the same host
/// conditions and drift cancels.
double speedupVs(const CellResult &Base, const CellResult &M) {
  std::vector<double> Ratios;
  const size_t N = std::min(Base.PerRound.size(), M.PerRound.size());
  for (size_t I = 0; I != N; ++I)
    if (Base.PerRound[I] > 0)
      Ratios.push_back(M.PerRound[I] / Base.PerRound[I]);
  return medianOf(Ratios);
}

/// Every fetchAdd is one visible op = one tick, so ticks/sec is a direct
/// read of scheduler handoff cost. Detectors are off to keep the tick
/// itself as thin as possible. One repetition; discarded when \p Warmup.
void runOnce(CellResult &Out, int Rep, int OpsPerThread, bool Warmup) {
  SessionConfig C;
  C.Strategy = Out.Strat;
  C.ExecMode = Mode::Free;
  C.Controlled = true;
  C.Wake = Out.Wake;
  C.TickCommit = Out.Mode;
  C.RaceDetection = false;
  C.WeakMemory = false;
  C.LivenessIntervalMs = 0;
  seedFor(C, static_cast<uint64_t>(Rep), 37 + Out.Threads);
  Session S(C);
  const int Threads = Out.Threads;
  const auto Start = std::chrono::steady_clock::now();
  RunReport R = S.run([Threads, OpsPerThread] {
    Atomic<uint64_t> Counter(0);
    std::vector<Thread> Ts;
    Ts.reserve(static_cast<size_t>(Threads));
    for (int T = 0; T != Threads; ++T)
      Ts.push_back(Thread::spawn([&Counter, OpsPerThread] {
        for (int I = 0; I != OpsPerThread; ++I)
          Counter.fetchAdd(1);
      }));
    for (Thread &T : Ts)
      T.join();
  });
  const double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  if (Warmup)
    return;
  Out.WallMs.add(Ms);
  const double Tps = static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0);
  Out.TicksPerSec.add(Tps);
  Out.PerRound.push_back(Tps);
  Out.Ticks = R.Sched.Ticks;
  Out.SpuriousWakeups = R.Sched.SpuriousWakeups;
  Out.TargetedWakeups = R.Sched.TargetedWakeups;
  Out.BroadcastWakeups = R.Sched.BroadcastWakeups;
  Out.FastPathCommits = R.Sched.FastPathCommits;
  Out.SlowPathCommits = R.Sched.SlowPathCommits;
  Out.FastPathAborts = R.Sched.FastPathAborts;
}

CellResult makeCell(StrategyKind Strat, WakePolicy Wake, TickCommitMode Mode,
                    int Threads) {
  CellResult C;
  C.Strat = Strat;
  C.Wake = Wake;
  C.Mode = Mode;
  C.Threads = Threads;
  C.Policy = Wake == WakePolicy::Targeted ? "targeted" : "broadcast";
  C.Commit = Mode == TickCommitMode::Pipelined ? "pipelined" : "mutex";
  C.Strategy = Strat == StrategyKind::Queue ? "queue" : "random";
  if (Wake == WakePolicy::Broadcast)
    C.Name = "broadcast-" + std::to_string(Threads);
  else
    C.Name = std::string(C.Strategy) + "-" + C.Commit + "-" +
             std::to_string(Threads);
  return C;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int OpsPerThread = envInt("TSR_BENCH_SCHED_OPS", 20000);

  std::printf("Scheduler tick throughput: commit mode x wake policy x "
              "strategy\n(atomic-counter workload, %d reps interleaved + 1 "
              "warm-up, %d ops/thread)\n\n",
              Reps, OpsPerThread);

  // Broadcast (the legacy notify_all path, random strategy, mutex commit)
  // anchors speedup_vs_broadcast; each pipelined cell pairs with the
  // mutex cell that differs only in commit mode for speedup_vs_mutex.
  std::vector<CellResult> Cells;
  for (int Threads : {2, 4, 8}) {
    Cells.push_back(makeCell(StrategyKind::Random, WakePolicy::Broadcast,
                             TickCommitMode::Mutex, Threads));
    for (StrategyKind Strat : {StrategyKind::Random, StrategyKind::Queue})
      for (TickCommitMode Mode :
           {TickCommitMode::Mutex, TickCommitMode::Pipelined})
        Cells.push_back(
            makeCell(Strat, WakePolicy::Targeted, Mode, Threads));
  }

  // Interleave repetitions round-robin across every cell; the first round
  // is a discarded warm-up paying one-time costs (page faults, allocator
  // growth).
  for (int Rep = -1; Rep != Reps; ++Rep)
    for (CellResult &C : Cells)
      runOnce(C, Rep < 0 ? 0 : Rep, OpsPerThread, /*Warmup=*/Rep < 0);

  for (size_t I = 0; I != Cells.size(); ++I) {
    CellResult &C = Cells[I];
    for (const CellResult &Base : Cells) {
      if (Base.Threads == C.Threads && Base.Wake == WakePolicy::Broadcast &&
          C.Wake == WakePolicy::Targeted)
        C.SpeedupVsBroadcast = speedupVs(Base, C);
      if (Base.Threads == C.Threads && Base.Strat == C.Strat &&
          Base.Wake == C.Wake && Base.Mode == TickCommitMode::Mutex &&
          C.Mode == TickCommitMode::Pipelined)
        C.SpeedupVsMutex = speedupVs(Base, C);
    }
  }

  const std::vector<int> W = {20, 18, 12, 9, 9, 8, 8, 8, 9};
  printRule(W);
  printRow({"config", "ticks/sec", "wall ms", "vs bcast", "vs mutex",
            "fast", "slow", "aborts", "spurious"},
           W);
  printRule(W);
  for (const CellResult &R : Cells)
    printRow({R.Name, meanSd(R.TicksPerSec, 0), meanSd(R.WallMs, 1),
              fmt(R.SpeedupVsBroadcast, 2) + "x",
              fmt(R.SpeedupVsMutex, 2) + "x",
              std::to_string(R.FastPathCommits),
              std::to_string(R.SlowPathCommits),
              std::to_string(R.FastPathAborts),
              std::to_string(R.SpuriousWakeups)},
             W);
  printRule(W);
  std::printf(
      "\nvs bcast = median per-round ratio against the broadcast cell at "
      "the same\nthread count; vs mutex = against the cell differing only "
      "in commit mode.\nfast/slow/aborts split ticks between the lock-free "
      "ticket pipeline and the\nmutex slow path; spurious stays zero under "
      "targeted parking in every mode.\n");

  FILE *F = std::fopen("BENCH_sched_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_sched_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"sched_throughput\",\n"
               "  \"workload\": \"atomic-counter\",\n  \"reps\": %d,\n"
               "  \"ops_per_thread\": %d,\n  \"configs\": [\n",
               Reps, OpsPerThread);
  for (size_t I = 0; I != Cells.size(); ++I) {
    const CellResult &R = Cells[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"policy\": \"%s\", \"commit\": \"%s\", "
        "\"strategy\": \"%s\", \"threads\": %d, \"ticks\": %llu,\n"
        "     \"spurious_wakeups\": %llu, \"targeted_wakeups\": %llu, "
        "\"broadcast_wakeups\": %llu,\n"
        "     \"fast_path_commits\": %llu, \"slow_path_commits\": %llu, "
        "\"fast_path_aborts\": %llu,\n"
        "     \"speedup_vs_broadcast\": %.3f, \"speedup_vs_mutex\": %.3f,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(), R.Policy, R.Commit, R.Strategy, R.Threads,
        static_cast<unsigned long long>(R.Ticks),
        static_cast<unsigned long long>(R.SpuriousWakeups),
        static_cast<unsigned long long>(R.TargetedWakeups),
        static_cast<unsigned long long>(R.BroadcastWakeups),
        static_cast<unsigned long long>(R.FastPathCommits),
        static_cast<unsigned long long>(R.SlowPathCommits),
        static_cast<unsigned long long>(R.FastPathAborts),
        R.SpeedupVsBroadcast, R.SpeedupVsMutex,
        R.TicksPerSec.toJson(8).c_str(), R.WallMs.toJson(8).c_str(),
        I + 1 == Cells.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_sched_throughput.json\n");
  return 0;
}
