//===-- bench/sched_throughput.cpp - Wakeup policy tick throughput -------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures what targeted per-thread parking buys over the legacy global
// notify_all broadcast in the scheduler hot path: controlled-run tick
// throughput on a contended atomic-counter workload, swept over
// {2, 4, 8} threads x {broadcast, targeted} wake policies. The schedule
// is identical under both policies (the wake path moves threads between
// parked and runnable but never picks who runs); only the wakeup cost
// differs. Emits BENCH_sched_throughput.json alongside the table.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct CellResult {
  std::string Name;
  const char *Policy = "";
  int Threads = 0;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  uint64_t Ticks = 0;            ///< Controlled ticks of the last repetition.
  uint64_t SpuriousWakeups = 0;  ///< Last repetition.
  uint64_t TargetedWakeups = 0;  ///< Last repetition.
  uint64_t BroadcastWakeups = 0; ///< Last repetition.
  double SpeedupVsBroadcast = 0; ///< Filled after both policies ran.
};

/// Every fetchAdd is one visible op = one tick, so ticks/sec is a direct
/// read of scheduler handoff cost. Detectors are off to keep the tick
/// itself as thin as possible — the wake path dominates.
CellResult measure(WakePolicy Wake, int Threads, int Reps, int OpsPerThread) {
  CellResult Out;
  Out.Policy = Wake == WakePolicy::Targeted ? "targeted" : "broadcast";
  Out.Name = std::string(Out.Policy) + "-" + std::to_string(Threads);
  Out.Threads = Threads;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    SessionConfig C;
    C.Strategy = StrategyKind::Random;
    C.ExecMode = Mode::Free;
    C.Controlled = true;
    C.Wake = Wake;
    C.RaceDetection = false;
    C.WeakMemory = false;
    C.LivenessIntervalMs = 0;
    seedFor(C, static_cast<uint64_t>(Rep), 37 + Threads);
    Session S(C);
    const auto Start = std::chrono::steady_clock::now();
    RunReport R = S.run([Threads, OpsPerThread] {
      Atomic<uint64_t> Counter(0);
      std::vector<Thread> Ts;
      Ts.reserve(static_cast<size_t>(Threads));
      for (int T = 0; T != Threads; ++T)
        Ts.push_back(Thread::spawn([&Counter, OpsPerThread] {
          for (int I = 0; I != OpsPerThread; ++I)
            Counter.fetchAdd(1);
        }));
      for (Thread &T : Ts)
        T.join();
    });
    const double Ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
    Out.WallMs.add(Ms);
    Out.TicksPerSec.add(static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0));
    Out.Ticks = R.Sched.Ticks;
    Out.SpuriousWakeups = R.Sched.SpuriousWakeups;
    Out.TargetedWakeups = R.Sched.TargetedWakeups;
    Out.BroadcastWakeups = R.Sched.BroadcastWakeups;
  }
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int OpsPerThread = envInt("TSR_BENCH_SCHED_OPS", 20000);

  std::printf("Scheduler tick throughput: targeted parking vs notify_all "
              "broadcast\n(atomic-counter workload, %d reps, %d ops/thread)"
              "\n\n",
              Reps, OpsPerThread);

  // Broadcast first per thread count so its mean is ready when the
  // targeted cell computes its speedup.
  std::vector<CellResult> Results;
  for (int Threads : {2, 4, 8}) {
    CellResult Broadcast =
        measure(WakePolicy::Broadcast, Threads, Reps, OpsPerThread);
    CellResult Targeted =
        measure(WakePolicy::Targeted, Threads, Reps, OpsPerThread);
    const double Base = Broadcast.TicksPerSec.mean();
    Broadcast.SpeedupVsBroadcast = 1.0;
    Targeted.SpeedupVsBroadcast =
        Base > 0 ? Targeted.TicksPerSec.mean() / Base : 0.0;
    Results.push_back(Broadcast);
    Results.push_back(Targeted);
  }

  const std::vector<int> W = {14, 18, 14, 9, 10, 10, 10};
  printRule(W);
  printRow({"config", "ticks/sec", "wall ms", "speedup", "spurious",
            "targeted", "broadcast"},
           W);
  printRule(W);
  for (const CellResult &R : Results)
    printRow({R.Name, meanSd(R.TicksPerSec, 0), meanSd(R.WallMs, 1),
              fmt(R.SpeedupVsBroadcast, 2) + "x",
              std::to_string(R.SpuriousWakeups),
              std::to_string(R.TargetedWakeups),
              std::to_string(R.BroadcastWakeups)},
             W);
  printRule(W);
  std::printf("\nspeedup = targeted ticks/sec / broadcast ticks/sec at the "
              "same thread count.\nspurious counts threads that woke without "
              "holding the designation; targeted\nparking keeps it at zero "
              "while broadcast pays one of these per non-designated\nparked "
              "thread per tick.\n");

  FILE *F = std::fopen("BENCH_sched_throughput.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_sched_throughput.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"sched_throughput\",\n"
               "  \"workload\": \"atomic-counter\",\n  \"reps\": %d,\n"
               "  \"ops_per_thread\": %d,\n  \"configs\": [\n",
               Reps, OpsPerThread);
  for (size_t I = 0; I != Results.size(); ++I) {
    const CellResult &R = Results[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"policy\": \"%s\", \"threads\": %d, "
        "\"ticks\": %llu,\n"
        "     \"spurious_wakeups\": %llu, \"targeted_wakeups\": %llu, "
        "\"broadcast_wakeups\": %llu,\n"
        "     \"speedup_vs_broadcast\": %.3f,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(), R.Policy, R.Threads,
        static_cast<unsigned long long>(R.Ticks),
        static_cast<unsigned long long>(R.SpuriousWakeups),
        static_cast<unsigned long long>(R.TargetedWakeups),
        static_cast<unsigned long long>(R.BroadcastWakeups),
        R.SpeedupVsBroadcast, R.TicksPerSec.toJson(8).c_str(),
        R.WallMs.toJson(8).c_str(), I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_sched_throughput.json\n");
  return 0;
}
