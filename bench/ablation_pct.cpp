//===-- bench/ablation_pct.cpp - PCT strategy ablation (E10) -------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The paper's Section 5.1 shows uniform random scheduling almost never
// finds the chase-lev-deque race (the owner must perform 29 operations
// before the thief performs 4), and Section 7 proposes probabilistic
// concurrency testing (PCT) as the fix. This ablation compares race
// discovery rates of the random, queue, round-robin and PCT strategies
// over the whole litmus suite.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/litmus/Litmus.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 200);

  struct StratRow {
    const char *Name;
    StrategyKind Kind;
    double PctProb;
    unsigned Delays;
  };
  const StratRow Strats[] = {
      {"rnd", StrategyKind::Random, 0, 0},
      {"queue", StrategyKind::Queue, 0, 0},
      {"round-robin", StrategyKind::RoundRobin, 0, 0},
      {"pct p=0.02", StrategyKind::Pct, 0.02, 0},
      {"pct p=0.10", StrategyKind::Pct, 0.10, 0},
      {"delay d=3", StrategyKind::DelayBounded, 0, 3},
  };

  std::printf("Strategy ablation: race discovery rate over %d runs per "
              "cell (Sections 5.1 and 7)\n\n",
              Reps);
  const std::vector<int> Widths = {16, 8, 8, 12, 11, 11, 11};
  printRule(Widths);
  printRow({"Test", "rnd", "queue", "round-robin", "pct p=.02",
            "pct p=.10", "delay d=3"},
           Widths);
  printRule(Widths);

  for (const auto &Test : litmus::suite()) {
    std::vector<std::string> Cells = {Test.Name};
    for (const StratRow &SR : Strats) {
      int Racy = 0;
      for (int Rep = 0; Rep != Reps; ++Rep) {
        SessionConfig C = presets::tsan11rec(SR.Kind);
        if (SR.Kind == StrategyKind::Pct)
          C.Params.PctChangeProb = SR.PctProb;
        if (SR.Kind == StrategyKind::DelayBounded)
          C.Params.DelayBudget = SR.Delays;
        C.LivenessIntervalMs = 0;
        seedFor(C, static_cast<uint64_t>(Rep), 29);
        Session S(C);
        RunReport R = S.run(Test.Body);
        if (!R.Races.empty())
          ++Racy;
      }
      Cells.push_back(fmt(100.0 * Racy / Reps, 1) + "%");
    }
    printRow(Cells, Widths);
  }
  printRule(Widths);
  std::printf("\nShape check: PCT's priority change points skew schedules "
              "enough to beat\nuniform random on lopsided interleavings "
              "like chase-lev-deque, supporting\nthe paper's Section 7 "
              "proposal.\n");
  return 0;
}
