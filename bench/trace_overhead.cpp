//===-- bench/trace_overhead.cpp - Execution tracing overhead ------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures what virtual-time execution tracing costs: record-mode tick
// throughput over the pbzip workload with tracing {off, on, on + Chrome
// JSON export}. The observability contract (DESIGN.md section 8): the
// disabled path — one branch on a null pointer per instrumentation site —
// must stay within 1% of the untraced baseline, and full tracing within
// 10%. Emits BENCH_trace_overhead.json with SampleStats::toJson
// distributions per mode.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/pbzip/Pbzip.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct ModeResult {
  std::string Name;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  uint64_t Ticks = 0;       ///< Controlled ticks of the last repetition.
  uint64_t TraceEvents = 0; ///< Events emitted in the last repetition.
  uint64_t TraceDropped = 0;
};

ModeResult measure(const std::string &Name, bool Traced, bool WallClock,
                   bool Export, int Reps, int InputRepeats) {
  ModeResult Out;
  Out.Name = Name;
  const std::string ExportPath =
      std::filesystem::temp_directory_path().string() +
      "/tsr-bench-trace.json";
  for (int Rep = 0; Rep != Reps; ++Rep) {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         RecordPolicy::full());
    seedFor(C, static_cast<uint64_t>(Rep), 29);
    C.Trace.Enabled = Traced;
    C.Trace.WallClock = WallClock;
    if (Export)
      C.Trace.ExportChromePath = ExportPath;
    Session S(C);
    pbzip::PbzipConfig PC;
    PC.Threads = 4;
    PC.BlockSize = 512;
    std::vector<uint8_t> Input;
    for (int I = 0; I != InputRepeats; ++I) {
      const std::string Chunk =
          "execution tracing benchmark " + std::to_string(I % 13) + " ";
      Input.insert(Input.end(), Chunk.begin(), Chunk.end());
    }
    S.env().putFile(PC.InputPath, Input);
    const auto Start = std::chrono::steady_clock::now();
    RunReport R = S.run([&PC] { (void)pbzip::compressFile(PC); });
    const double Ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
    Out.WallMs.add(Ms);
    Out.TicksPerSec.add(static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0));
    Out.Ticks = R.Sched.Ticks;
    Out.TraceEvents = R.Trace.Emitted;
    Out.TraceDropped = R.Trace.Dropped;
  }
  std::error_code Ec;
  std::filesystem::remove(ExportPath, Ec);
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int InputRepeats = envInt("TSR_BENCH_INPUT_REPEATS", 2000);

  std::printf("Virtual-time tracing overhead\n(pbzip record mode, %d reps, "
              "~%d KB input)\n\n",
              Reps, InputRepeats * 30 / 1024);

  std::vector<ModeResult> Results;
  Results.push_back(
      measure("trace-off", false, false, false, Reps, InputRepeats));
  Results.push_back(
      measure("trace-virtual", true, false, false, Reps, InputRepeats));
  Results.push_back(
      measure("trace-on", true, true, false, Reps, InputRepeats));
  Results.push_back(
      measure("trace-on+export", true, true, true, Reps, InputRepeats));

  const std::vector<int> W = {16, 18, 14, 10, 12, 10};
  printRule(W);
  printRow({"mode", "ticks/sec", "wall ms", "overhead", "events", "dropped"},
           W);
  printRule(W);
  const double Base = Results[0].TicksPerSec.mean();
  for (const ModeResult &R : Results)
    printRow({R.Name, meanSd(R.TicksPerSec, 0), meanSd(R.WallMs, 1),
              overhead(Base, R.TicksPerSec.mean()),
              std::to_string(R.TraceEvents),
              std::to_string(R.TraceDropped)},
             W);
  printRule(W);
  std::printf("\noverhead = trace-off throughput / mode throughput "
              "(1.0x = free).\nContract: off-path <= 1.01x (one null-pointer "
              "branch per site),\nfull tracing <= 1.10x.\n");

  FILE *F = std::fopen("BENCH_trace_overhead.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_trace_overhead.json\n");
    return 1;
  }
  std::fprintf(F, "{\n  \"bench\": \"trace_overhead\",\n"
                  "  \"workload\": \"pbzip\",\n  \"reps\": %d,\n"
                  "  \"modes\": [\n",
               Reps);
  for (size_t I = 0; I != Results.size(); ++I) {
    const ModeResult &R = Results[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"ticks\": %llu, \"trace_events\": %llu, "
        "\"trace_dropped\": %llu, \"overhead_vs_off\": %.3f,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(), static_cast<unsigned long long>(R.Ticks),
        static_cast<unsigned long long>(R.TraceEvents),
        static_cast<unsigned long long>(R.TraceDropped),
        R.TicksPerSec.mean() > 0 ? Base / R.TicksPerSec.mean() : 0.0,
        R.TicksPerSec.toJson(8).c_str(), R.WallMs.toJson(8).c_str(),
        I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_trace_overhead.json\n");
  return 0;
}
