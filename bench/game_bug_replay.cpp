//===-- bench/game_bug_replay.cpp - Section 5.4 bug replay (E5) ----------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Reproduces the Zandronum case study of Section 5.4: play the game in
// internet multiplayer mode against a server whose map-change handling is
// faulty, recording with the sparse game policy (ioctl ignored), until the
// stale-game-state bug manifests; then replay the demo — without any
// server — and verify the bug reappears at the same logical point.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/game/Game.h"

using namespace tsr;
using namespace tsr::bench;

int main() {
  const int MaxAttempts = envInt("TSR_BUG_ATTEMPTS", 40);
  const int Frames = envInt("TSR_GAME_FRAMES", 200);

  game::GameConfig GC;
  GC.Frames = Frames;
  GC.FpsCap = 0;
  GC.Audio = true;
  GC.Multiplayer = true;

  std::printf("Section 5.4 case study: record the map-change bug, replay "
              "it without the server\n\n");

  Demo D;
  game::GameResult Recorded;
  int Attempt = 0;
  bool Found = false;
  for (; Attempt != MaxAttempts && !Found; ++Attempt) {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         RecordPolicy::game());
    seedFor(C, static_cast<uint64_t>(Attempt), 13);
    Session S(C);
    S.env().addPeer("zandronum-server", game::makeGameServer(true),
                    game::GameServerPort);
    game::GameResult GR;
    RunReport R = S.run([&] { GR = game::runGame(GC); });
    if (GR.BugObserved) {
      Found = true;
      Recorded = GR;
      D = R.RecordedDemo;
      std::printf("attempt %d: bug manifested (map %d, logic hash "
                  "%016llx), demo = %zu bytes\n",
                  Attempt + 1, GR.FinalMap,
                  static_cast<unsigned long long>(GR.LogicHash),
                  D.totalSize());
    } else {
      std::printf("attempt %d: clean run (map %d)\n", Attempt + 1,
                  GR.FinalMap);
    }
  }
  if (!Found) {
    std::printf("bug did not manifest in %d attempts\n", MaxAttempts);
    return 1;
  }

  for (int Rep = 0; Rep != 3; ++Rep) {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Replay,
                                         RecordPolicy::game());
    C.ReplayDemo = &D;
    Session S(C); // note: no server peer — the demo supplies the network
    game::GameResult GR;
    RunReport R = S.run([&] { GR = game::runGame(GC); });
    const bool Ok = GR.BugObserved && GR.LogicHash == Recorded.LogicHash &&
                    R.Desync == DesyncKind::None;
    std::printf("replay %d: bug=%s logicHash=%016llx desync=%s -> %s\n",
                Rep + 1, GR.BugObserved ? "yes" : "NO",
                static_cast<unsigned long long>(GR.LogicHash),
                R.Desync == DesyncKind::None ? "none" : "HARD",
                Ok ? "SYNCHRONISED" : "FAILED");
    if (!Ok)
      return 1;
  }
  std::printf("\nResult: the recorded bug replays deterministically with "
              "ioctl traffic\nre-issued natively (sparse policy), matching "
              "Section 5.4.\n");
  return 0;
}
