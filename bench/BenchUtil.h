//===-- bench/BenchUtil.h - Benchmark harness helpers -----------*- C++ -*-===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table-reproduction harnesses: repetition counts
/// (overridable via TSR_BENCH_REPS), aligned table printing, and the named
/// tool configurations each table sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef TSR_BENCH_BENCHUTIL_H
#define TSR_BENCH_BENCHUTIL_H

#include "runtime/Tsr.h"
#include "support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tsr {
namespace bench {

/// Reads an integer knob from the environment (bench scaling).
inline int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

/// Prints one row of '|'-separated cells with the given widths.
inline void printRow(const std::vector<std::string> &Cells,
                     const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I != Cells.size(); ++I) {
    const int W = I < Widths.size() ? Widths[I] : 12;
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), " %-*s |", W, Cells[I].c_str());
    Line += Buf;
  }
  std::printf("|%s\n", Line.c_str());
}

/// Prints a rule matching printRow's widths.
inline void printRule(const std::vector<int> &Widths) {
  std::string Line;
  for (int W : Widths) {
    Line += "+";
    Line.append(static_cast<size_t>(W) + 2, '-');
  }
  std::printf("%s+\n", Line.c_str());
}

/// Formats a double with \p Decimals decimals.
inline std::string fmt(double V, int Decimals = 1) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

/// Formats "mean (stddev)".
inline std::string meanSd(const SampleStats &S, int Decimals = 1) {
  return fmt(S.mean(), Decimals) + " (" + fmt(S.stddev(), Decimals) + ")";
}

/// Formats an overhead multiplier like the paper's Tables 2 and 4.
inline std::string overhead(double Slow, double Base) {
  if (Base <= 0)
    return "n/a";
  return fmt(Slow / Base, 1) + "x";
}

/// A named tool configuration used by a sweep.
struct ToolConfig {
  std::string Name;
  SessionConfig Config;
};

/// Deterministic per-repetition seeds so reruns of a bench are
/// reproducible while different repetitions still explore different
/// schedules.
inline void seedFor(SessionConfig &C, uint64_t Rep, uint64_t EnvSalt = 9) {
  C.Seed0 = 0x5EED + Rep * 1299721;
  C.Seed1 = 0xFACE + Rep * 7778777;
  C.Env.Seed0 = EnvSalt + Rep * 104729;
  C.Env.Seed1 = EnvSalt * 31 + Rep * 130363;
}

} // namespace bench
} // namespace tsr

#endif // TSR_BENCH_BENCHUTIL_H
