//===-- bench/race_overhead.cpp - Shadow-memory backend comparison -------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures what the two-level packed shadow memory (DESIGN.md §10) buys
// over the legacy striped-map baseline:
//
//  1. disjoint-granule plain-access throughput, swept over {1, 2, 4, 8}
//     threads x {striped, twolevel} backends — the same-epoch fast path
//     replaces a stripe mutex + hash lookup per access with one relaxed
//     load, so this is a direct read of per-access detector cost;
//  2. end-to-end pbzip and PARSEC-kernel runs per backend, reporting the
//     same-epoch hit fraction of all plain accesses;
//  3. record/replay of every race-heavy litmus app: the demo recorded
//     under the two-level backend is replayed under both backends and
//     the race-report sets compared — semantics must be identical.
//
// Emits BENCH_race_overhead.json alongside the tables.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/litmus/Litmus.h"
#include "apps/parsec/Kernels.h"
#include "apps/pbzip/Pbzip.h"
#include "runtime/Presets.h"

#include <algorithm>
#include <chrono>
#include <tuple>

using namespace tsr;
using namespace tsr::bench;

namespace {

const char *backendName(RaceShadowMode Shadow) {
  return Shadow == RaceShadowMode::TwoLevel ? "twolevel" : "striped";
}

//===----------------------------------------------------------------------===//
// Part 1: disjoint-granule plain-access throughput
//===----------------------------------------------------------------------===//

struct CellResult {
  std::string Name;
  const char *Backend = "";
  int Threads = 0;
  SampleStats AccessesPerSec;
  SampleStats WallMs;
  uint64_t PlainAccesses = 0; ///< Last repetition.
  uint64_t SameEpochHits = 0; ///< Last repetition.
  uint64_t FastPathHits = 0;  ///< Last repetition.
  double SpeedupVsStriped = 0; ///< Filled after both backends ran.
};

constexpr int SlotsPerThread = 64;
constexpr int BurstLen = 8;

/// Each thread hammers its own slab of granules: per slot, a burst of
/// same-epoch writes then a burst of same-epoch reads. The first access
/// of each burst takes the slow path, the repeats are the fast path's
/// best case — which is exactly the pattern tight loops over Var<T>
/// produce.
CellResult measureDisjoint(RaceShadowMode Shadow, int Threads, int Reps,
                           int Iters) {
  CellResult Out;
  Out.Backend = backendName(Shadow);
  Out.Name = std::string(Out.Backend) + "-" + std::to_string(Threads);
  Out.Threads = Threads;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    SessionConfig C;
    C.Strategy = StrategyKind::Random;
    C.ExecMode = Mode::Free;
    C.Controlled = true;
    C.RaceShadow = Shadow;
    C.RaceDetection = true;
    C.WeakMemory = false;
    C.LivenessIntervalMs = 0;
    seedFor(C, static_cast<uint64_t>(Rep), 41 + Threads);
    Session S(C);
    const auto Start = std::chrono::steady_clock::now();
    RunReport R = S.run([Threads, Iters] {
      std::vector<std::vector<uint64_t>> Slabs(
          static_cast<size_t>(Threads),
          std::vector<uint64_t>(SlotsPerThread, 0));
      auto Hammer = [Iters](std::vector<uint64_t> &Slab) {
        for (int It = 0; It != Iters; ++It) {
          for (int Slot = 0; Slot != SlotsPerThread; ++Slot)
            for (int K = 0; K != BurstLen; ++K)
              plainWrite(Slab[static_cast<size_t>(Slot)],
                         static_cast<uint64_t>(It + K));
          uint64_t Sum = 0;
          for (int Slot = 0; Slot != SlotsPerThread; ++Slot)
            for (int K = 0; K != BurstLen; ++K)
              Sum += plainRead(Slab[static_cast<size_t>(Slot)]);
          plainWrite(Slab[0], Sum);
        }
      };
      std::vector<Thread> Ts;
      Ts.reserve(static_cast<size_t>(Threads) - 1);
      for (int T = 1; T < Threads; ++T)
        Ts.push_back(
            Thread::spawn([&Hammer, &Slabs, T] { Hammer(Slabs[T]); }));
      Hammer(Slabs[0]);
      for (Thread &T : Ts)
        T.join();
      for (std::vector<uint64_t> &Slab : Slabs)
        Session::current()->race().forgetRange(
            reinterpret_cast<uintptr_t>(Slab.data()),
            Slab.size() * sizeof(uint64_t));
    });
    const double Ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
    Out.WallMs.add(Ms);
    Out.PlainAccesses = R.Metrics.counterOr("race.plain_accesses");
    Out.SameEpochHits = R.Metrics.counterOr("race.same_epoch_hits");
    Out.FastPathHits = R.Metrics.counterOr("race.fast_path_hits");
    Out.AccessesPerSec.add(static_cast<double>(Out.PlainAccesses) /
                           (Ms / 1000.0));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Part 2: end-to-end app runs per backend
//===----------------------------------------------------------------------===//

struct AppResult {
  std::string Name;
  const char *Backend = "";
  SampleStats WallMs;
  uint64_t PlainAccesses = 0;
  uint64_t SameEpochHits = 0;
  double SameEpochFraction = 0;
};

AppResult measureApp(const std::string &App, RaceShadowMode Shadow, int Reps,
                     int InputRepeats) {
  AppResult Out;
  Out.Backend = backendName(Shadow);
  Out.Name = App + "-" + Out.Backend;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    SessionConfig C = presets::tsan11rec(StrategyKind::Random);
    C.RaceShadow = Shadow;
    C.LivenessIntervalMs = 0;
    seedFor(C, static_cast<uint64_t>(Rep), 59);
    Session S(C);
    double Ms = 0;
    if (App == "pbzip") {
      pbzip::PbzipConfig PC;
      PC.Threads = 4;
      PC.BlockSize = 512;
      std::vector<uint8_t> Input;
      for (int I = 0; I != InputRepeats; ++I) {
        const std::string Chunk =
            "race overhead benchmark " + std::to_string(I % 13) + " ";
        Input.insert(Input.end(), Chunk.begin(), Chunk.end());
      }
      S.env().putFile(PC.InputPath, Input);
      const auto Start = std::chrono::steady_clock::now();
      RunReport R = S.run([&PC] { (void)pbzip::compressFile(PC); });
      Ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
               .count();
      Out.PlainAccesses = R.Metrics.counterOr("race.plain_accesses");
      Out.SameEpochHits = R.Metrics.counterOr("race.same_epoch_hits");
    } else {
      parsec::KernelConfig KC;
      KC.Threads = 4;
      KC.Size = 192;
      const auto Start = std::chrono::steady_clock::now();
      RunReport R = S.run([&KC] { (void)parsec::bodytrack(KC); });
      Ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
               .count();
      Out.PlainAccesses = R.Metrics.counterOr("race.plain_accesses");
      Out.SameEpochHits = R.Metrics.counterOr("race.same_epoch_hits");
    }
    Out.WallMs.add(Ms);
  }
  Out.SameEpochFraction =
      Out.PlainAccesses
          ? static_cast<double>(Out.SameEpochHits) /
                static_cast<double>(Out.PlainAccesses)
          : 0.0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Part 3: cross-backend record/replay race-report identity
//===----------------------------------------------------------------------===//

/// Address-free report signature: addresses differ run to run (stack and
/// heap layout), but kind pair, size and the registered name are stable
/// properties of the schedule the demo pins down.
using ReportSig = std::tuple<int, int, size_t, std::string>;

std::vector<ReportSig> signatures(const std::vector<RaceReport> &Reports) {
  std::vector<ReportSig> Out;
  for (const RaceReport &R : Reports)
    Out.emplace_back(static_cast<int>(R.Prior), static_cast<int>(R.Current),
                     R.Size, R.Name);
  std::sort(Out.begin(), Out.end());
  return Out;
}

struct LitmusResult {
  int Apps = 0;
  int AppsWithRaces = 0;
  size_t RecordedReports = 0;
  bool IdenticalReports = true;
};

LitmusResult measureLitmus() {
  LitmusResult Out;
  for (const litmus::LitmusTest &T : litmus::suite()) {
    ++Out.Apps;
    SessionConfig RC = presets::tsan11rec(StrategyKind::Random, Mode::Record,
                                          RecordPolicy::httpd());
    RC.RaceShadow = RaceShadowMode::TwoLevel;
    RC.LivenessIntervalMs = 0;
    seedFor(RC, 3, 67);
    Demo D;
    std::vector<ReportSig> Recorded;
    {
      Session S(RC);
      RunReport R = S.run(T.Body);
      D = R.RecordedDemo;
      Recorded = signatures(R.Races);
    }
    Out.RecordedReports += Recorded.size();
    if (!Recorded.empty())
      ++Out.AppsWithRaces;
    for (const RaceShadowMode Shadow :
         {RaceShadowMode::TwoLevel, RaceShadowMode::StripedMap}) {
      SessionConfig PC = presets::tsan11rec(StrategyKind::Random, Mode::Replay,
                                            RecordPolicy::httpd());
      PC.RaceShadow = Shadow;
      PC.ReplayDemo = &D;
      PC.LivenessIntervalMs = 0;
      Session S(PC);
      RunReport R = S.run(T.Body);
      if (signatures(R.Races) != Recorded) {
        Out.IdenticalReports = false;
        std::fprintf(stderr,
                     "report mismatch: %s under %s (%zu vs %zu reports)\n",
                     T.Name.c_str(), backendName(Shadow), R.Races.size(),
                     Recorded.size());
      }
    }
  }
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int Iters = envInt("TSR_BENCH_RACE_ITERS", 150);
  const int InputRepeats = envInt("TSR_BENCH_INPUT_REPEATS", 2000);

  std::printf("Race-detection overhead: two-level packed shadow vs striped "
              "map\n(disjoint-granule workload, %d reps, %d iters, %d slots "
              "x %d-access bursts per thread)\n\n",
              Reps, Iters, SlotsPerThread, BurstLen);

  std::vector<CellResult> Cells;
  for (int Threads : {1, 2, 4, 8}) {
    CellResult Striped =
        measureDisjoint(RaceShadowMode::StripedMap, Threads, Reps, Iters);
    CellResult TwoLevel =
        measureDisjoint(RaceShadowMode::TwoLevel, Threads, Reps, Iters);
    const double Base = Striped.AccessesPerSec.mean();
    Striped.SpeedupVsStriped = 1.0;
    TwoLevel.SpeedupVsStriped =
        Base > 0 ? TwoLevel.AccessesPerSec.mean() / Base : 0.0;
    Cells.push_back(Striped);
    Cells.push_back(TwoLevel);
  }

  const std::vector<int> W = {13, 18, 12, 9, 12, 12, 12};
  printRule(W);
  printRow({"config", "accesses/sec", "wall ms", "speedup", "plain",
            "same-epoch", "fast-path"},
           W);
  printRule(W);
  for (const CellResult &R : Cells)
    printRow({R.Name, meanSd(R.AccessesPerSec, 0), meanSd(R.WallMs, 1),
              fmt(R.SpeedupVsStriped, 2) + "x", std::to_string(R.PlainAccesses),
              std::to_string(R.SameEpochHits), std::to_string(R.FastPathHits)},
             W);
  printRule(W);

  std::printf("\nEnd-to-end apps (4 threads, per backend)\n\n");
  std::vector<AppResult> Apps;
  for (const char *App : {"pbzip", "bodytrack"})
    for (const RaceShadowMode Shadow :
         {RaceShadowMode::StripedMap, RaceShadowMode::TwoLevel})
      Apps.push_back(measureApp(App, Shadow, Reps, InputRepeats));
  const std::vector<int> AW = {20, 18, 12, 12, 12};
  printRule(AW);
  printRow({"app", "wall ms", "plain", "same-epoch", "hit frac"}, AW);
  printRule(AW);
  for (const AppResult &R : Apps)
    printRow({R.Name, meanSd(R.WallMs, 1), std::to_string(R.PlainAccesses),
              std::to_string(R.SameEpochHits), fmt(R.SameEpochFraction, 3)},
             AW);
  printRule(AW);

  std::printf("\nCross-backend record/replay identity (litmus suite)\n");
  const LitmusResult L = measureLitmus();
  std::printf("  apps: %d, with races: %d, recorded reports: %zu, "
              "identical across backends: %s\n",
              L.Apps, L.AppsWithRaces, L.RecordedReports,
              L.IdenticalReports ? "yes" : "NO");

  FILE *F = std::fopen("BENCH_race_overhead.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_race_overhead.json\n");
    return 1;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"race_overhead\",\n"
               "  \"workload\": \"disjoint-granule + apps + litmus\",\n"
               "  \"reps\": %d,\n  \"iters\": %d,\n  \"configs\": [\n",
               Reps, Iters);
  for (size_t I = 0; I != Cells.size(); ++I) {
    const CellResult &R = Cells[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"backend\": \"%s\", \"threads\": %d,\n"
        "     \"plain_accesses\": %llu, \"same_epoch_hits\": %llu, "
        "\"fast_path_hits\": %llu,\n"
        "     \"speedup_vs_striped\": %.3f,\n"
        "     \"accesses_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(), R.Backend, R.Threads,
        static_cast<unsigned long long>(R.PlainAccesses),
        static_cast<unsigned long long>(R.SameEpochHits),
        static_cast<unsigned long long>(R.FastPathHits), R.SpeedupVsStriped,
        R.AccessesPerSec.toJson(8).c_str(), R.WallMs.toJson(8).c_str(),
        I + 1 == Cells.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"apps\": [\n");
  for (size_t I = 0; I != Apps.size(); ++I) {
    const AppResult &R = Apps[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"backend\": \"%s\",\n"
                 "     \"plain_accesses\": %llu, \"same_epoch_hits\": %llu, "
                 "\"same_epoch_fraction\": %.3f,\n"
                 "     \"wall_ms\": %s}%s\n",
                 R.Name.c_str(), R.Backend,
                 static_cast<unsigned long long>(R.PlainAccesses),
                 static_cast<unsigned long long>(R.SameEpochHits),
                 R.SameEpochFraction, R.WallMs.toJson(8).c_str(),
                 I + 1 == Apps.size() ? "" : ",");
  }
  std::fprintf(F,
               "  ],\n  \"litmus\": {\"apps\": %d, \"apps_with_races\": %d, "
               "\"recorded_reports\": %zu, \"identical_reports\": %s}\n}\n",
               L.Apps, L.AppsWithRaces, L.RecordedReports,
               L.IdenticalReports ? "true" : "false");
  std::fclose(F);
  std::printf("\nwrote BENCH_race_overhead.json\n");
  return 0;
}
