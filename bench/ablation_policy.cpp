//===-- bench/ablation_policy.cpp - Recording-granularity spectrum -------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The paper's §7 names "a spectrum of recording granularities to bridge
// the gap between our sparse approach and stricter approaches in a
// configurable manner" as future work. RecordPolicy is that spectrum;
// this ablation walks it — nothing → scheduling only → sparse network →
// full — on two applications with opposite needs:
//
//  * the Figure 2 network client, whose replay needs the network but not
//    the allocator;
//  * the §5.5 layout-dependent program, whose replay needs the allocator.
//
// For each (app, policy) it reports demo size and replay fidelity.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/figures/Figures.h"
#include "apps/layout/Layout.h"
#include "support/Diag.h"

using namespace tsr;
using namespace tsr::bench;

namespace {

struct Fidelity {
  size_t DemoBytes = 0;
  bool Hard = false;
  bool Faithful = false;
};

// Side-channel the app lambdas fill from their RunReport (the bench is
// single-threaded).
Demo LastDemo;
DesyncKind LastDesync = DesyncKind::None;

/// Records App under Policy, replays it in a *different* world, and
/// compares the observable.
template <typename App>
Fidelity tryPolicy(const RecordPolicy &Policy, App RunApp,
                   uint64_t EnvSalt) {
  Fidelity F;
  Demo D;
  uint64_t Recorded = 0;
  {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         Policy);
    C.Seed0 = 41;
    C.Seed1 = 42;
    C.Env.Seed0 = 1000 + EnvSalt; // recording world
    C.Env.Seed1 = 2000 + EnvSalt;
    Session S(C);
    Recorded = RunApp(S);
    D = LastDemo;
  }
  uint64_t Replayed = 0;
  {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Replay,
                                         Policy);
    C.ReplayDemo = &D;
    C.Env.Seed0 = 5000 + EnvSalt; // a different world: replay must not
    C.Env.Seed1 = 6000 + EnvSalt; // depend on unrecorded luck
    Session S(C);
    Replayed = RunApp(S);
  }
  F.DemoBytes = D.totalSize();
  F.Hard = LastDesync == DesyncKind::Hard;
  F.Faithful = !F.Hard && Replayed == Recorded;
  return F;
}

} // namespace

int main() {
  quietWarnings(true); // desyncs are data points here, not problems

  struct PolicyStep {
    const char *Name;
    RecordPolicy Policy;
  };
  const PolicyStep Spectrum[] = {
      {"none (schedule only)", RecordPolicy::none()},
      {"game (net, no ioctl)", RecordPolicy::game()},
      {"httpd (sparse)", RecordPolicy::httpd()},
      {"full (rr-like)", RecordPolicy::full()},
  };

  auto Fig2 = [](Session &S) -> uint64_t {
    S.env().addPeer("server", figures::makeFig2Server(10),
                    figures::Fig2ServerPort);
    figures::Fig2Result R;
    RunReport Rep = S.run([&] { R = figures::figure2Client(10); });
    LastDemo = Rep.RecordedDemo;
    LastDesync = Rep.Desync;
    return R.PayloadHash ^ (static_cast<uint64_t>(R.Processed) << 56);
  };
  auto Layout = [](Session &S) -> uint64_t {
    layout::LayoutResult R;
    RunReport Rep = S.run([&] { R = layout::run(48); });
    LastDemo = Rep.RecordedDemo;
    LastDesync = Rep.Desync;
    return R.OrderHash;
  };

  std::printf("Recording-granularity spectrum (paper §7 future work)\n\n");
  const std::vector<int> Widths = {22, 12, 24, 12, 24};
  printRule(Widths);
  printRow({"Policy", "fig2 bytes", "fig2 replay", "layout bytes",
            "layout replay"},
           Widths);
  printRule(Widths);
  for (const PolicyStep &Step : Spectrum) {
    const Fidelity A = tryPolicy(Step.Policy, Fig2, 1);
    const Fidelity B = tryPolicy(Step.Policy, Layout, 2);
    auto Verdict = [](const Fidelity &F) -> std::string {
      if (F.Hard)
        return "HARD DESYNC";
      return F.Faithful ? "faithful" : "soft divergence";
    };
    printRow({Step.Name, fmt(static_cast<double>(A.DemoBytes), 0),
              Verdict(A), fmt(static_cast<double>(B.DemoBytes), 0),
              Verdict(B)},
             Widths);
  }
  printRule(Widths);
  std::printf(
      "\nReading: each application has a *minimum* sufficient granularity "
      "— the\nnetwork client needs the sparse network set, the "
      "layout-dependent program\nneeds the full set — and recording less "
      "than that diverges while recording\nmore only costs bytes. This is "
      "the configurable spectrum §7 calls for.\n");
  return 0;
}
