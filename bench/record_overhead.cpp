//===-- bench/record_overhead.cpp - Incremental flush overhead -----------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Measures what crash-consistent incremental recording costs relative to
// the original end-of-run serialisation: record-mode tick throughput and
// on-disk demo size for {end-of-run, chunked-every-64-ticks,
// chunked-every-1-tick} flush policies over the pbzip workload. Emits
// BENCH_record_overhead.json (machine-readable, one object per policy)
// alongside the human-readable table.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/pbzip/Pbzip.h"

#include <chrono>
#include <filesystem>

using namespace tsr;
using namespace tsr::bench;

namespace {

struct PolicyResult {
  std::string Name;
  SampleStats TicksPerSec;
  SampleStats WallMs;
  uint64_t Ticks = 0;       ///< Controlled ticks of the last repetition.
  size_t DemoBytes = 0;     ///< In-memory demo of the last repetition.
  size_t OnDiskBytes = 0;   ///< Chunked directory size (0 for end-of-run).
};

size_t directoryBytes(const std::string &Dir) {
  size_t Total = 0;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec))
    Total += std::filesystem::file_size(Entry.path(), Ec);
  return Total;
}

PolicyResult measure(const std::string &Name, uint64_t FlushEveryTicks,
                     int Reps, int InputRepeats) {
  PolicyResult Out;
  Out.Name = Name;
  const std::string Dir =
      std::filesystem::temp_directory_path().string() + "/tsr-bench-flush";
  for (int Rep = 0; Rep != Reps; ++Rep) {
    SessionConfig C = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         RecordPolicy::full());
    seedFor(C, static_cast<uint64_t>(Rep), 23);
    if (FlushEveryTicks) {
      std::filesystem::remove_all(Dir);
      C.Flush.Directory = Dir;
      C.Flush.EveryTicks = FlushEveryTicks;
    }
    Session S(C);
    pbzip::PbzipConfig PC;
    PC.Threads = 4;
    PC.BlockSize = 512;
    std::vector<uint8_t> Input;
    for (int I = 0; I != InputRepeats; ++I) {
      const std::string Chunk =
          "incremental flush benchmark " + std::to_string(I % 13) + " ";
      Input.insert(Input.end(), Chunk.begin(), Chunk.end());
    }
    S.env().putFile(PC.InputPath, Input);
    const auto Start = std::chrono::steady_clock::now();
    RunReport R = S.run([&PC] { (void)pbzip::compressFile(PC); });
    const double Ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
    Out.WallMs.add(Ms);
    Out.TicksPerSec.add(static_cast<double>(R.Sched.Ticks) / (Ms / 1000.0));
    Out.Ticks = R.Sched.Ticks;
    Out.DemoBytes = R.RecordedDemo.totalSize();
    if (FlushEveryTicks) {
      Out.OnDiskBytes = directoryBytes(Dir);
      std::filesystem::remove_all(Dir);
    }
  }
  return Out;
}

} // namespace

int main() {
  const int Reps = envInt("TSR_BENCH_REPS", 5);
  const int InputRepeats = envInt("TSR_BENCH_INPUT_REPEATS", 2000);

  std::printf("Record-mode overhead of crash-consistent incremental "
              "flushing\n(pbzip, %d reps, ~%d KB input)\n\n",
              Reps, InputRepeats * 30 / 1024);

  std::vector<PolicyResult> Results;
  Results.push_back(measure("end-of-run", 0, Reps, InputRepeats));
  Results.push_back(measure("chunked-64", 64, Reps, InputRepeats));
  Results.push_back(measure("chunked-1", 1, Reps, InputRepeats));

  const std::vector<int> W = {12, 18, 14, 10, 12, 12};
  printRule(W);
  printRow({"policy", "ticks/sec", "wall ms", "overhead", "demo B",
            "on-disk B"},
           W);
  printRule(W);
  const double Base = Results[0].TicksPerSec.mean();
  for (const PolicyResult &R : Results)
    printRow({R.Name, meanSd(R.TicksPerSec, 0), meanSd(R.WallMs, 1),
              overhead(Base, R.TicksPerSec.mean()),
              std::to_string(R.DemoBytes), std::to_string(R.OnDiskBytes)},
             W);
  printRule(W);
  std::printf("\noverhead = end-of-run throughput / policy throughput "
              "(1.0x = free).\nThe chunked demo's on-disk size exceeds the "
              "in-memory demo by the chunk\nframing (24 B per chunk per "
              "stream per flush).\n");

  // Machine-readable trajectory seed.
  FILE *F = std::fopen("BENCH_record_overhead.json", "w");
  if (!F) {
    std::fprintf(stderr, "cannot write BENCH_record_overhead.json\n");
    return 1;
  }
  std::fprintf(F, "{\n  \"bench\": \"record_overhead\",\n"
                  "  \"workload\": \"pbzip\",\n  \"reps\": %d,\n"
                  "  \"policies\": [\n",
               Reps);
  for (size_t I = 0; I != Results.size(); ++I) {
    const PolicyResult &R = Results[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"overhead_vs_end_of_run\": %.3f, "
        "\"ticks\": %llu, \"demo_bytes\": %zu, \"on_disk_bytes\": %zu,\n"
        "     \"ticks_per_sec\": %s,\n     \"wall_ms\": %s}%s\n",
        R.Name.c_str(),
        R.TicksPerSec.mean() > 0 ? Base / R.TicksPerSec.mean() : 0.0,
        static_cast<unsigned long long>(R.Ticks), R.DemoBytes,
        R.OnDiskBytes, R.TicksPerSec.toJson(8).c_str(),
        R.WallMs.toJson(8).c_str(), I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote BENCH_record_overhead.json\n");
  return 0;
}
