# Empty compiler generated dependencies file for tsr_support.
# This may be replaced when dependencies are built.
