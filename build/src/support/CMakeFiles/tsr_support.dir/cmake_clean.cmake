file(REMOVE_RECURSE
  "CMakeFiles/tsr_support.dir/Demo.cpp.o"
  "CMakeFiles/tsr_support.dir/Demo.cpp.o.d"
  "CMakeFiles/tsr_support.dir/DemoInspect.cpp.o"
  "CMakeFiles/tsr_support.dir/DemoInspect.cpp.o.d"
  "CMakeFiles/tsr_support.dir/Diag.cpp.o"
  "CMakeFiles/tsr_support.dir/Diag.cpp.o.d"
  "CMakeFiles/tsr_support.dir/Rle.cpp.o"
  "CMakeFiles/tsr_support.dir/Rle.cpp.o.d"
  "libtsr_support.a"
  "libtsr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
