file(REMOVE_RECURSE
  "libtsr_support.a"
)
