file(REMOVE_RECURSE
  "CMakeFiles/tsr_race.dir/AtomicModel.cpp.o"
  "CMakeFiles/tsr_race.dir/AtomicModel.cpp.o.d"
  "CMakeFiles/tsr_race.dir/RaceDetector.cpp.o"
  "CMakeFiles/tsr_race.dir/RaceDetector.cpp.o.d"
  "libtsr_race.a"
  "libtsr_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
