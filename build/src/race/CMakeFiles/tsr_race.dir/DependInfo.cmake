
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/AtomicModel.cpp" "src/race/CMakeFiles/tsr_race.dir/AtomicModel.cpp.o" "gcc" "src/race/CMakeFiles/tsr_race.dir/AtomicModel.cpp.o.d"
  "/root/repo/src/race/RaceDetector.cpp" "src/race/CMakeFiles/tsr_race.dir/RaceDetector.cpp.o" "gcc" "src/race/CMakeFiles/tsr_race.dir/RaceDetector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
