file(REMOVE_RECURSE
  "libtsr_race.a"
)
