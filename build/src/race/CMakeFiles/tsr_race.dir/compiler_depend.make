# Empty compiler generated dependencies file for tsr_race.
# This may be replaced when dependencies are built.
