# Empty compiler generated dependencies file for tsr_apps.
# This may be replaced when dependencies are built.
