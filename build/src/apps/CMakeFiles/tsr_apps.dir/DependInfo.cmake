
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/figures/Figures.cpp" "src/apps/CMakeFiles/tsr_apps.dir/figures/Figures.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/figures/Figures.cpp.o.d"
  "/root/repo/src/apps/game/Game.cpp" "src/apps/CMakeFiles/tsr_apps.dir/game/Game.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/game/Game.cpp.o.d"
  "/root/repo/src/apps/htop/Htop.cpp" "src/apps/CMakeFiles/tsr_apps.dir/htop/Htop.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/htop/Htop.cpp.o.d"
  "/root/repo/src/apps/httpd/Httpd.cpp" "src/apps/CMakeFiles/tsr_apps.dir/httpd/Httpd.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/httpd/Httpd.cpp.o.d"
  "/root/repo/src/apps/layout/Layout.cpp" "src/apps/CMakeFiles/tsr_apps.dir/layout/Layout.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/layout/Layout.cpp.o.d"
  "/root/repo/src/apps/litmus/Litmus.cpp" "src/apps/CMakeFiles/tsr_apps.dir/litmus/Litmus.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/litmus/Litmus.cpp.o.d"
  "/root/repo/src/apps/parsec/Kernels.cpp" "src/apps/CMakeFiles/tsr_apps.dir/parsec/Kernels.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/parsec/Kernels.cpp.o.d"
  "/root/repo/src/apps/pbzip/Lz.cpp" "src/apps/CMakeFiles/tsr_apps.dir/pbzip/Lz.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/pbzip/Lz.cpp.o.d"
  "/root/repo/src/apps/pbzip/Pbzip.cpp" "src/apps/CMakeFiles/tsr_apps.dir/pbzip/Pbzip.cpp.o" "gcc" "src/apps/CMakeFiles/tsr_apps.dir/pbzip/Pbzip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tsr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/tsr_env.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/tsr_race.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tsr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
