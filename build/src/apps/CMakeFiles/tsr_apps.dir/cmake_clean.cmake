file(REMOVE_RECURSE
  "CMakeFiles/tsr_apps.dir/figures/Figures.cpp.o"
  "CMakeFiles/tsr_apps.dir/figures/Figures.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/game/Game.cpp.o"
  "CMakeFiles/tsr_apps.dir/game/Game.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/htop/Htop.cpp.o"
  "CMakeFiles/tsr_apps.dir/htop/Htop.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/httpd/Httpd.cpp.o"
  "CMakeFiles/tsr_apps.dir/httpd/Httpd.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/layout/Layout.cpp.o"
  "CMakeFiles/tsr_apps.dir/layout/Layout.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/litmus/Litmus.cpp.o"
  "CMakeFiles/tsr_apps.dir/litmus/Litmus.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/parsec/Kernels.cpp.o"
  "CMakeFiles/tsr_apps.dir/parsec/Kernels.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/pbzip/Lz.cpp.o"
  "CMakeFiles/tsr_apps.dir/pbzip/Lz.cpp.o.d"
  "CMakeFiles/tsr_apps.dir/pbzip/Pbzip.cpp.o"
  "CMakeFiles/tsr_apps.dir/pbzip/Pbzip.cpp.o.d"
  "libtsr_apps.a"
  "libtsr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
