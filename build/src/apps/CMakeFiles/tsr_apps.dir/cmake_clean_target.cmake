file(REMOVE_RECURSE
  "libtsr_apps.a"
)
