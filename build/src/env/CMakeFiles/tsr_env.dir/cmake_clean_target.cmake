file(REMOVE_RECURSE
  "libtsr_env.a"
)
