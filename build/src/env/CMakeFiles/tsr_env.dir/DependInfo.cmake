
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/CostModel.cpp" "src/env/CMakeFiles/tsr_env.dir/CostModel.cpp.o" "gcc" "src/env/CMakeFiles/tsr_env.dir/CostModel.cpp.o.d"
  "/root/repo/src/env/SimEnv.cpp" "src/env/CMakeFiles/tsr_env.dir/SimEnv.cpp.o" "gcc" "src/env/CMakeFiles/tsr_env.dir/SimEnv.cpp.o.d"
  "/root/repo/src/env/Syscall.cpp" "src/env/CMakeFiles/tsr_env.dir/Syscall.cpp.o" "gcc" "src/env/CMakeFiles/tsr_env.dir/Syscall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
