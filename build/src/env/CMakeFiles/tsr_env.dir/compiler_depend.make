# Empty compiler generated dependencies file for tsr_env.
# This may be replaced when dependencies are built.
