file(REMOVE_RECURSE
  "CMakeFiles/tsr_env.dir/CostModel.cpp.o"
  "CMakeFiles/tsr_env.dir/CostModel.cpp.o.d"
  "CMakeFiles/tsr_env.dir/SimEnv.cpp.o"
  "CMakeFiles/tsr_env.dir/SimEnv.cpp.o.d"
  "CMakeFiles/tsr_env.dir/Syscall.cpp.o"
  "CMakeFiles/tsr_env.dir/Syscall.cpp.o.d"
  "libtsr_env.a"
  "libtsr_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
