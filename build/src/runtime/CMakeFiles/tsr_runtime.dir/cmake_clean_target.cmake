file(REMOVE_RECURSE
  "libtsr_runtime.a"
)
