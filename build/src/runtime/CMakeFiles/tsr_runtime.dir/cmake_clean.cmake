file(REMOVE_RECURSE
  "CMakeFiles/tsr_runtime.dir/Explorer.cpp.o"
  "CMakeFiles/tsr_runtime.dir/Explorer.cpp.o.d"
  "CMakeFiles/tsr_runtime.dir/Mutex.cpp.o"
  "CMakeFiles/tsr_runtime.dir/Mutex.cpp.o.d"
  "CMakeFiles/tsr_runtime.dir/Session.cpp.o"
  "CMakeFiles/tsr_runtime.dir/Session.cpp.o.d"
  "CMakeFiles/tsr_runtime.dir/Sys.cpp.o"
  "CMakeFiles/tsr_runtime.dir/Sys.cpp.o.d"
  "CMakeFiles/tsr_runtime.dir/Thread.cpp.o"
  "CMakeFiles/tsr_runtime.dir/Thread.cpp.o.d"
  "libtsr_runtime.a"
  "libtsr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
