# Empty dependencies file for tsr_runtime.
# This may be replaced when dependencies are built.
