
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/Scheduler.cpp" "src/sched/CMakeFiles/tsr_sched.dir/Scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/tsr_sched.dir/Scheduler.cpp.o.d"
  "/root/repo/src/sched/Strategy.cpp" "src/sched/CMakeFiles/tsr_sched.dir/Strategy.cpp.o" "gcc" "src/sched/CMakeFiles/tsr_sched.dir/Strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tsr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
