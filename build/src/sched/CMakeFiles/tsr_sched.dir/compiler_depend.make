# Empty compiler generated dependencies file for tsr_sched.
# This may be replaced when dependencies are built.
