file(REMOVE_RECURSE
  "libtsr_sched.a"
)
