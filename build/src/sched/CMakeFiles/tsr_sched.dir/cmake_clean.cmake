file(REMOVE_RECURSE
  "CMakeFiles/tsr_sched.dir/Scheduler.cpp.o"
  "CMakeFiles/tsr_sched.dir/Scheduler.cpp.o.d"
  "CMakeFiles/tsr_sched.dir/Strategy.cpp.o"
  "CMakeFiles/tsr_sched.dir/Strategy.cpp.o.d"
  "libtsr_sched.a"
  "libtsr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
