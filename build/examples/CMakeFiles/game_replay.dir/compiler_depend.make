# Empty compiler generated dependencies file for game_replay.
# This may be replaced when dependencies are built.
