# Empty dependencies file for tsr-demo-dump.
# This may be replaced when dependencies are built.
