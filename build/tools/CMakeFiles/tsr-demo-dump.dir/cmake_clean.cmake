file(REMOVE_RECURSE
  "CMakeFiles/tsr-demo-dump.dir/DemoDump.cpp.o"
  "CMakeFiles/tsr-demo-dump.dir/DemoDump.cpp.o.d"
  "tsr-demo-dump"
  "tsr-demo-dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsr-demo-dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
