# Empty compiler generated dependencies file for util_apps_test.
# This may be replaced when dependencies are built.
