file(REMOVE_RECURSE
  "CMakeFiles/util_apps_test.dir/UtilAppsTest.cpp.o"
  "CMakeFiles/util_apps_test.dir/UtilAppsTest.cpp.o.d"
  "util_apps_test"
  "util_apps_test.pdb"
  "util_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
