file(REMOVE_RECURSE
  "CMakeFiles/litmus_property_test.dir/LitmusPropertyTest.cpp.o"
  "CMakeFiles/litmus_property_test.dir/LitmusPropertyTest.cpp.o.d"
  "litmus_property_test"
  "litmus_property_test.pdb"
  "litmus_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
