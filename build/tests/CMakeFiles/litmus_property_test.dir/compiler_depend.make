# Empty compiler generated dependencies file for litmus_property_test.
# This may be replaced when dependencies are built.
