file(REMOVE_RECURSE
  "CMakeFiles/session_smoke_test.dir/SessionSmokeTest.cpp.o"
  "CMakeFiles/session_smoke_test.dir/SessionSmokeTest.cpp.o.d"
  "session_smoke_test"
  "session_smoke_test.pdb"
  "session_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
