# Empty dependencies file for session_smoke_test.
# This may be replaced when dependencies are built.
