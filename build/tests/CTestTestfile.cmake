# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/session_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_property_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/util_apps_test[1]_include.cmake")
include("/root/repo/build/tests/explorer_test[1]_include.cmake")
