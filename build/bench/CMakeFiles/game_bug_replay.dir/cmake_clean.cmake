file(REMOVE_RECURSE
  "CMakeFiles/game_bug_replay.dir/game_bug_replay.cpp.o"
  "CMakeFiles/game_bug_replay.dir/game_bug_replay.cpp.o.d"
  "game_bug_replay"
  "game_bug_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_bug_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
