# Empty dependencies file for game_bug_replay.
# This may be replaced when dependencies are built.
