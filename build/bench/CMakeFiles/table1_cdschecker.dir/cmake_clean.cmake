file(REMOVE_RECURSE
  "CMakeFiles/table1_cdschecker.dir/table1_cdschecker.cpp.o"
  "CMakeFiles/table1_cdschecker.dir/table1_cdschecker.cpp.o.d"
  "table1_cdschecker"
  "table1_cdschecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cdschecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
