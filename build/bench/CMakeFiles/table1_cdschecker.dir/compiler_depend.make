# Empty compiler generated dependencies file for table1_cdschecker.
# This may be replaced when dependencies are built.
