file(REMOVE_RECURSE
  "CMakeFiles/table2_httpd.dir/table2_httpd.cpp.o"
  "CMakeFiles/table2_httpd.dir/table2_httpd.cpp.o.d"
  "table2_httpd"
  "table2_httpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
