# Empty compiler generated dependencies file for table2_httpd.
# This may be replaced when dependencies are built.
