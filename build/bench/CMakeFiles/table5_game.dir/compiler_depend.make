# Empty compiler generated dependencies file for table5_game.
# This may be replaced when dependencies are built.
