file(REMOVE_RECURSE
  "CMakeFiles/table5_game.dir/table5_game.cpp.o"
  "CMakeFiles/table5_game.dir/table5_game.cpp.o.d"
  "table5_game"
  "table5_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
