# Empty dependencies file for ablation_pct.
# This may be replaced when dependencies are built.
