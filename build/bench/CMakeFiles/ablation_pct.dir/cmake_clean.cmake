file(REMOVE_RECURSE
  "CMakeFiles/ablation_pct.dir/ablation_pct.cpp.o"
  "CMakeFiles/ablation_pct.dir/ablation_pct.cpp.o.d"
  "ablation_pct"
  "ablation_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
