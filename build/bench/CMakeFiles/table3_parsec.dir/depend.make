# Empty dependencies file for table3_parsec.
# This may be replaced when dependencies are built.
