file(REMOVE_RECURSE
  "CMakeFiles/table3_parsec.dir/table3_parsec.cpp.o"
  "CMakeFiles/table3_parsec.dir/table3_parsec.cpp.o.d"
  "table3_parsec"
  "table3_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
