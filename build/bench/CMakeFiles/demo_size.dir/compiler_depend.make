# Empty compiler generated dependencies file for demo_size.
# This may be replaced when dependencies are built.
