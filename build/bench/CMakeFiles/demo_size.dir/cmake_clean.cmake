file(REMOVE_RECURSE
  "CMakeFiles/demo_size.dir/demo_size.cpp.o"
  "CMakeFiles/demo_size.dir/demo_size.cpp.o.d"
  "demo_size"
  "demo_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
