file(REMOVE_RECURSE
  "CMakeFiles/limitation_layout.dir/limitation_layout.cpp.o"
  "CMakeFiles/limitation_layout.dir/limitation_layout.cpp.o.d"
  "limitation_layout"
  "limitation_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limitation_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
