# Empty compiler generated dependencies file for limitation_layout.
# This may be replaced when dependencies are built.
