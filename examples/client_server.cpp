//===-- examples/client_server.cpp - The paper's Figure 2 ----------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The paper's motivating example (Figure 2, Sections 2 and 4.1): a client
// with a Listener thread (poll + recv into a shared queue) and a Responder
// thread (process + send back), terminated by an asynchronous signal.
//
// Phase 1 records the client against a scripted server with jittered
// message timing. Phase 2 replays the demo with NO server installed: the
// recorded syscalls supply every byte the client saw — "repeatedly replay
// the execution without having to connect to a real server".
//
// Usage: client_server [num-requests]    (default 20)
//
//===----------------------------------------------------------------------===//

#include "apps/figures/Figures.h"
#include "runtime/Tsr.h"

#include <cstdio>
#include <cstdlib>

using namespace tsr;

int main(int Argc, char **Argv) {
  const int NumRequests = Argc > 1 ? std::atoi(Argv[1]) : 20;

  std::printf("-- phase 1: record %d requests against the live server\n",
              NumRequests);
  SessionConfig Cfg = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                         RecordPolicy::httpd());
  Session Recorder(Cfg);
  Recorder.env().addPeer("server", figures::makeFig2Server(NumRequests),
                         figures::Fig2ServerPort);
  figures::Fig2Result Recorded;
  RunReport Report =
      Recorder.run([&] { Recorded = figures::figure2Client(NumRequests); });
  std::printf("   processed=%d pollError=%s payloadHash=%016llx\n",
              Recorded.Processed, Recorded.PollError ? "yes" : "no",
              static_cast<unsigned long long>(Recorded.PayloadHash));
  std::printf("   demo: %zu bytes total, %zu bytes of syscalls, "
              "%llu signals delivered\n",
              Report.RecordedDemo.totalSize(),
              Report.RecordedDemo.streamSize(StreamKind::Syscall),
              static_cast<unsigned long long>(
                  Report.Sched.SignalsDelivered));

  std::printf("-- phase 2: replay twice, without any server\n");
  for (int Rep = 1; Rep <= 2; ++Rep) {
    SessionConfig PCfg = presets::tsan11rec(
        StrategyKind::Queue, Mode::Replay, RecordPolicy::httpd());
    PCfg.ReplayDemo = &Report.RecordedDemo;
    Session Replayer(PCfg);
    figures::Fig2Result Replayed;
    RunReport PReport = Replayer.run(
        [&] { Replayed = figures::figure2Client(NumRequests); });
    const bool Ok = PReport.Desync == DesyncKind::None &&
                    Replayed.Processed == Recorded.Processed &&
                    Replayed.PayloadHash == Recorded.PayloadHash;
    std::printf("   replay %d: processed=%d payloadHash=%016llx "
                "replayedSyscalls=%llu -> %s\n",
                Rep, Replayed.Processed,
                static_cast<unsigned long long>(Replayed.PayloadHash),
                static_cast<unsigned long long>(PReport.SyscallsReplayed),
                Ok ? "SYNCHRONISED" : "FAILED");
    if (!Ok) {
      std::printf("   desync: %s\n", PReport.DesyncMessage.c_str());
      return 1;
    }
  }
  std::printf("ok: the client's network history replays from the demo.\n");
  return 0;
}
