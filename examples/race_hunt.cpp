//===-- examples/race_hunt.cpp - Controlled-scheduling race hunting ------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Sweeps scheduler seeds over the CDSchecker litmus suite with a chosen
// strategy, reporting which benchmarks raced and how often — the §5.1
// workflow: "exploring interesting schedules can reveal subtle bugs that
// the system scheduler would trigger with low probability". Try comparing
// strategies:
//
//   race_hunt random 100
//   race_hunt pct 100        (the paper's §7 proposal; finds
//                             chase-lev-deque where random cannot)
//
// Usage: race_hunt [random|queue|round-robin|pct|delay-bounded] [seeds]
//
//===----------------------------------------------------------------------===//

#include "apps/litmus/Litmus.h"
#include "runtime/Tsr.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tsr;

int main(int Argc, char **Argv) {
  StrategyKind Kind = StrategyKind::Random;
  if (Argc > 1) {
    const char *Name = Argv[1];
    if (!std::strcmp(Name, "queue"))
      Kind = StrategyKind::Queue;
    else if (!std::strcmp(Name, "round-robin"))
      Kind = StrategyKind::RoundRobin;
    else if (!std::strcmp(Name, "pct"))
      Kind = StrategyKind::Pct;
    else if (!std::strcmp(Name, "delay-bounded"))
      Kind = StrategyKind::DelayBounded;
    else if (std::strcmp(Name, "random")) {
      std::printf("unknown strategy '%s'\n", Name);
      return 1;
    }
  }
  const int Seeds = Argc > 2 ? std::atoi(Argv[2]) : 100;

  std::printf("hunting with strategy '%s', %d seeds per benchmark\n\n",
              strategyName(Kind), Seeds);
  for (const auto &Test : litmus::suite()) {
    int Hits = 0;
    uint64_t FirstSeed = 0;
    std::string FirstRace;
    for (int Seed = 0; Seed != Seeds; ++Seed) {
      SessionConfig Cfg = presets::tsan11rec(Kind);
      Cfg.Seed0 = 0xBEEF + Seed;
      Cfg.Seed1 = 0xF00D + Seed * 13;
      Cfg.LivenessIntervalMs = 0;
      Session S(Cfg);
      RunReport R = S.run(Test.Body);
      if (!R.Races.empty()) {
        if (!Hits) {
          FirstSeed = Cfg.Seed0;
          FirstRace = R.Races[0].str();
        }
        ++Hits;
      }
    }
    std::printf("%-18s %3d/%d seeds raced", Test.Name.c_str(), Hits,
                Seeds);
    if (Hits)
      std::printf("  (first at seed 0x%llx: %s)",
                  static_cast<unsigned long long>(FirstSeed),
                  FirstRace.c_str());
    std::printf("\n");
  }
  std::printf("\nA racy seed is a reproducer: rerun with the same seeds "
              "and strategy to\nget the same schedule, or record it for a "
              "shareable demo.\n");
  return 0;
}
