//===-- examples/fault_injection.cpp - Hostile-environment recording -----===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// Demonstrates the deterministic fault injector (env/FaultPlan.h): an
// echo client is recorded while the plan resets its second recv, storms
// its sends with VEAGAIN and randomly shortens reads — then the demo is
// replayed with the injector disarmed and no peer installed, and every
// injected failure comes back bit-for-bit from the SYSCALL stream.
//
// Usage: fault_injection [rounds]    (default 6)
//
//===----------------------------------------------------------------------===//

#include "runtime/Tsr.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace tsr;

namespace {

/// Echoes every message straight back.
class Echo final : public Peer {
public:
  void onMessage(PeerApi &Api, uint64_t Conn,
                 const std::vector<uint8_t> &Data) override {
    Api.send(Conn, Data);
  }
};

/// A client that retries through failures, logging what it observes.
uint64_t hostileClient(int Rounds, bool Chatty) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) { H = (H ^ V) * 1099511628211ull; };

  const int Fd = sys::socket();
  Mix(static_cast<uint64_t>(sys::connect(Fd, 7001)));
  for (int Round = 0; Round != Rounds; ++Round) {
    const uint8_t Msg[4] = {'m', 's', 'g',
                            static_cast<uint8_t>('0' + Round % 10)};
    const int64_t Sent = sys::send(Fd, Msg, sizeof Msg);
    Mix(static_cast<uint64_t>(Sent));
    Mix(static_cast<uint64_t>(sys::lastError()));
    if (Chatty && Sent < 0)
      std::printf("   round %d: send failed (errno %d)\n", Round,
                  sys::lastError());
    sys::sleepMs(5);
    uint8_t Buf[8] = {0};
    const int64_t Got = sys::recv(Fd, Buf, sizeof Buf);
    Mix(static_cast<uint64_t>(Got));
    Mix(static_cast<uint64_t>(sys::lastError()));
    for (int64_t I = 0; I < Got; ++I)
      Mix(Buf[I]);
    if (Chatty && Got < 0)
      std::printf("   round %d: recv failed (errno %d)\n", Round,
                  sys::lastError());
    else if (Chatty && Got < 4)
      std::printf("   round %d: short read (%lld of 4 bytes)\n", Round,
                  static_cast<long long>(Got));
  }
  Mix(static_cast<uint64_t>(sys::close(Fd)));
  return H;
}

} // namespace

int main(int Argc, char **Argv) {
  const int Rounds = Argc > 1 ? std::atoi(Argv[1]) : 6;

  FaultPlan Plan = FaultPlan::none()
                       .storm(SyscallKind::Send, 2, 2, VEAGAIN)
                       .failNthOn(SyscallKind::Recv, FdClass::Socket, 2,
                                  VECONNRESET)
                       .shortReads(0.5);

  std::printf("-- phase 1: record %d rounds under fault injection\n",
              Rounds);
  SessionConfig Cfg = presets::tsan11rec(
      StrategyKind::Queue, Mode::Record,
      RecordPolicy::httpd().enable(SyscallKind::Close));
  Cfg.Faults = Plan;
  Session Recorder(Cfg);
  Recorder.env().addPeer("echo", std::make_unique<Echo>(), 7001);
  uint64_t Recorded = 0;
  RunReport Report =
      Recorder.run([&] { Recorded = hostileClient(Rounds, true); });
  std::printf("   observation hash %016llx; injected: %llu errnos, "
              "%llu short transfers\n",
              static_cast<unsigned long long>(Recorded),
              static_cast<unsigned long long>(
                  Report.FaultsInjected.ErrnosInjected),
              static_cast<unsigned long long>(
                  Report.FaultsInjected.ShortTransfers));

  std::printf("-- phase 2: replay with the injector disarmed, no peer\n");
  SessionConfig PCfg = presets::tsan11rec(
      StrategyKind::Queue, Mode::Replay,
      RecordPolicy::httpd().enable(SyscallKind::Close));
  PCfg.ReplayDemo = &Report.RecordedDemo;
  Session Replayer(PCfg);
  uint64_t Replayed = 0;
  RunReport PReport =
      Replayer.run([&] { Replayed = hostileClient(Rounds, false); });
  const bool Ok = PReport.Desync == DesyncKind::None &&
                  Replayed == Recorded && PReport.SyscallsInjected == 0;
  std::printf("   observation hash %016llx, injected now: %llu -> %s\n",
              static_cast<unsigned long long>(Replayed),
              static_cast<unsigned long long>(PReport.SyscallsInjected),
              Ok ? "SYNCHRONISED" : "FAILED");
  if (!Ok) {
    std::printf("   desync: %s\n", PReport.DesyncInfo.Message.c_str());
    return 1;
  }
  std::printf("ok: every injected fault replayed from the SYSCALL "
              "stream.\n");
  return 0;
}
