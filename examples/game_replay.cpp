//===-- examples/game_replay.cpp - Sparse game record/replay -------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The Section 5.4 scenario as a standalone program: play MiniGame in
// internet multiplayer mode against a server with the map-change fault,
// recording under the *game* policy — which deliberately ignores ioctl, so
// the display-driver traffic free-runs — until the stale-state bug
// appears; then replay the demo without the server and watch the bug
// reproduce at the same logical point.
//
// Usage: game_replay [frames] [max-attempts]    (default 200, 40)
//
//===----------------------------------------------------------------------===//

#include "apps/game/Game.h"
#include "runtime/Tsr.h"

#include <cstdio>
#include <cstdlib>

using namespace tsr;

int main(int Argc, char **Argv) {
  game::GameConfig GC;
  GC.Frames = Argc > 1 ? std::atoi(Argv[1]) : 200;
  const int MaxAttempts = Argc > 2 ? std::atoi(Argv[2]) : 40;
  GC.FpsCap = 0;
  GC.Multiplayer = true;

  std::printf("-- hunting the map-change bug (up to %d recorded plays)\n",
              MaxAttempts);
  Demo D;
  game::GameResult Recorded;
  bool Found = false;
  for (int Attempt = 0; Attempt != MaxAttempts && !Found; ++Attempt) {
    SessionConfig Cfg = presets::tsan11rec(StrategyKind::Queue, Mode::Record,
                                           RecordPolicy::game());
    // Fresh scheduler seeds and a fresh world every attempt.
    Session S(Cfg);
    S.env().addPeer("server", game::makeGameServer(/*InjectBug=*/true),
                    game::GameServerPort);
    game::GameResult GR;
    RunReport Report = S.run([&] { GR = game::runGame(GC); });
    std::printf("   play %2d: frames=%d map=%d bug=%s\n", Attempt + 1,
                GR.FramesRendered, GR.FinalMap,
                GR.BugObserved ? "YES" : "no");
    if (GR.BugObserved) {
      Found = true;
      Recorded = GR;
      D = Report.RecordedDemo;
    }
  }
  if (!Found) {
    std::printf("no luck in %d plays; try more attempts\n", MaxAttempts);
    return 1;
  }
  std::printf("-- captured: demo %zu bytes (SYSCALL %zu); replaying "
              "without the server\n",
              D.totalSize(), D.streamSize(StreamKind::Syscall));

  SessionConfig PCfg = presets::tsan11rec(StrategyKind::Queue, Mode::Replay,
                                          RecordPolicy::game());
  PCfg.ReplayDemo = &D;
  Session Replayer(PCfg);
  // The display and audio devices still exist and their ioctls re-issue
  // natively (and return different jitter!) — game logic must not care.
  game::GameResult Replayed;
  RunReport PReport = Replayer.run([&] { Replayed = game::runGame(GC); });
  const bool Ok = PReport.Desync == DesyncKind::None &&
                  Replayed.BugObserved &&
                  Replayed.LogicHash == Recorded.LogicHash;
  std::printf("   replay: bug=%s logicHash %016llx vs %016llx, desync=%s "
              "-> %s\n",
              Replayed.BugObserved ? "YES" : "no",
              static_cast<unsigned long long>(Replayed.LogicHash),
              static_cast<unsigned long long>(Recorded.LogicHash),
              PReport.Desync == DesyncKind::None ? "none" : "HARD",
              Ok ? "REPRODUCED" : "FAILED");
  return Ok ? 0 : 1;
}
