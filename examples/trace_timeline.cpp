//===-- examples/trace_timeline.cpp - Observability walkthrough ----------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The observability tour: record a small racy workload with virtual-time
// tracing enabled, export the execution as Chrome trace-event JSON (open
// it at https://ui.perfetto.dev), replay it with tracing, and check the
// two traces are identical in virtual time — the record≡replay identity
// that makes a trace trustworthy as a debugging artifact. Finishes by
// printing the unified metrics snapshot as JSON.
//
// Usage: trace_timeline [demo-dir]   (default: /tmp/tsr-trace-demo)
//
// Side effects: <demo-dir>/ holds the recorded demo (feed it to
// `tsr-demo-dump timeline <demo-dir>`); <demo-dir>.record.json and
// <demo-dir>.replay.json hold the Perfetto-loadable traces.
//
//===----------------------------------------------------------------------===//

#include "runtime/Tsr.h"

#include <cstdio>

using namespace tsr;

namespace {

/// A small order-sensitive workload: three workers hand a token around
/// through an atomic and append to a shared log under a mutex, with a
/// couple of file syscalls so the SYSCALL stream participates too.
void workload() {
  Atomic<int> Token(0);
  Mutex Mu;
  Var<int> Progress(0, "progress");
  auto Worker = [&](int Id) {
    for (int Round = 0; Round != 4; ++Round) {
      int Cur = Token.load(std::memory_order_acquire);
      Token.store(Cur + Id, std::memory_order_release);
      Mu.lock();
      Progress.set(Progress.get() + 1);
      Mu.unlock();
    }
  };
  int Fd = sys::open("/data/log", /*Create=*/true);
  Thread A = Thread::spawn([&] { Worker(1); });
  Thread B = Thread::spawn([&] { Worker(2); });
  Thread C = Thread::spawn([&] { Worker(3); });
  A.join();
  B.join();
  C.join();
  if (Fd >= 0) {
    sys::write(Fd, "done", 4);
    sys::close(Fd);
  }
}

SessionConfig tracedConfig(Mode M, const std::string &ExportPath) {
  // Queue strategy: the QUEUE stream then records the literal tid-per-tick
  // schedule, which is what `tsr-demo-dump timeline` visualises (Random
  // reproduces its schedule from the META seeds and records no QUEUE).
  SessionConfig C =
      presets::tsan11rec(StrategyKind::Queue, M, RecordPolicy::full());
  C.Seed0 = 7;
  C.Seed1 = 9;
  C.LivenessIntervalMs = 0;
  C.Trace.Enabled = true;
  C.Trace.ExportChromePath = ExportPath;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string DemoDir = Argc > 1 ? Argv[1] : "/tmp/tsr-trace-demo";

  // --- Record with tracing; the session writes the Chrome JSON itself.
  SessionConfig RecCfg = tracedConfig(Mode::Record, DemoDir + ".record.json");
  Session Recorder(RecCfg);
  RunReport Rec = Recorder.run(workload);
  std::printf("recorded: %llu ticks, %zu trace events (%llu dropped)\n",
              static_cast<unsigned long long>(Rec.Sched.Ticks),
              Rec.Trace.Events.size(),
              static_cast<unsigned long long>(Rec.Trace.Dropped));

  std::string Error;
  if (!Rec.RecordedDemo.saveToDirectory(DemoDir, Error)) {
    std::printf("cannot save demo: %s\n", Error.c_str());
    return 1;
  }
  std::printf("demo saved to %s — try: tsr-demo-dump timeline %s\n",
              DemoDir.c_str(), DemoDir.c_str());

  // --- Replay with tracing and diff the two traces in virtual time.
  Demo D;
  if (!D.loadFromDirectory(DemoDir, Error)) {
    std::printf("cannot load demo: %s\n", Error.c_str());
    return 1;
  }
  SessionConfig RepCfg = tracedConfig(Mode::Replay, DemoDir + ".replay.json");
  RepCfg.ReplayDemo = &D;
  Session Replayer(RepCfg);
  RunReport Rep = Replayer.run(workload);
  if (Rep.Desync != DesyncKind::None) {
    std::printf("unexpected desync: %s\n", Rep.DesyncMessage.c_str());
    return 1;
  }

  const TraceDivergence Div = diffTraces(Rec.Trace, Rep.Trace);
  if (Div.Diverged) {
    std::printf("TRACES DIVERGED: %s\n%s\n", Div.Summary.c_str(),
                Div.Excerpt.c_str());
    return 1;
  }
  std::printf("replay trace identical in virtual time (%zu virtual events)\n",
              Rec.Trace.virtualEvents().size());

  // --- The unified metrics snapshot: every subsystem counter in one JSON.
  std::printf("metrics: %s\n", Rec.Metrics.toJson().c_str());
  std::printf("ok\n");
  return 0;
}
