//===-- examples/quickstart.cpp - tsr in five minutes --------------------===//
//
// Part of the tsr project: a reproduction of "Sparse Record and Replay with
// Controlled Scheduling" (PLDI 2019).
//
// The smallest useful tour: run a racy program under controlled random
// scheduling with race detection, record the execution into a demo
// directory on disk, then load the demo back and replay it — twice — to
// show that the outcome is pinned down.
//
// Usage: quickstart [demo-dir]     (default: /tmp/tsr-quickstart-demo)
//
//===----------------------------------------------------------------------===//

#include "runtime/Tsr.h"

#include <cstdio>

using namespace tsr;

namespace {

/// A tiny order-sensitive program: two workers race to claim a slot; the
/// winner's id and the unsynchronised counter depend on the schedule.
struct Outcome {
  int Winner = 0;
  int Counter = 0;
};

Outcome racyProgram() {
  Outcome Out;
  Atomic<int> Slot(0);
  Var<int> Counter(0, "counter"); // unsynchronised: tsr reports the race
  auto Claim = [&](int Id) {
    int Expected = 0;
    Slot.compareExchange(Expected, Id, std::memory_order_acq_rel,
                         std::memory_order_acquire);
    Counter.set(Counter.get() + 1); // racy increment
  };
  Thread A = Thread::spawn([&] { Claim(1); });
  Thread B = Thread::spawn([&] { Claim(2); });
  A.join();
  B.join();
  Out.Winner = Slot.load();
  Out.Counter = Counter.get();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string DemoDir =
      Argc > 1 ? Argv[1] : "/tmp/tsr-quickstart-demo";

  // --- Record: controlled random scheduling + race detection + sparse
  // recording. Seeds are drawn fresh, so each recording may pick a
  // different winner.
  SessionConfig Cfg = presets::tsan11rec(StrategyKind::Random, Mode::Record,
                                         RecordPolicy::httpd());
  Session Recorder(Cfg);
  Outcome Recorded;
  RunReport Report = Recorder.run([&] { Recorded = racyProgram(); });

  std::printf("recorded: winner=%d counter=%d (seeds %llx/%llx)\n",
              Recorded.Winner, Recorded.Counter,
              static_cast<unsigned long long>(Report.Seed0),
              static_cast<unsigned long long>(Report.Seed1));
  for (const RaceReport &R : Report.Races)
    std::printf("race found: %s\n", R.str().c_str());

  std::string Error;
  if (!Report.RecordedDemo.saveToDirectory(DemoDir, Error)) {
    std::printf("cannot save demo: %s\n", Error.c_str());
    return 1;
  }
  std::printf("demo saved to %s (%zu bytes)\n", DemoDir.c_str(),
              Report.RecordedDemo.totalSize());

  // --- Replay twice from disk: identical outcomes, no divergence.
  Demo D;
  if (!D.loadFromDirectory(DemoDir, Error)) {
    std::printf("cannot load demo: %s\n", Error.c_str());
    return 1;
  }
  for (int Rep = 1; Rep <= 2; ++Rep) {
    SessionConfig PCfg = presets::tsan11rec(
        StrategyKind::Random, Mode::Replay, RecordPolicy::httpd());
    PCfg.ReplayDemo = &D;
    Session Replayer(PCfg);
    Outcome Replayed;
    RunReport PReport = Replayer.run([&] { Replayed = racyProgram(); });
    const bool Same = Replayed.Winner == Recorded.Winner &&
                      Replayed.Counter == Recorded.Counter;
    std::printf("replay %d: winner=%d counter=%d desync=%s -> %s\n", Rep,
                Replayed.Winner, Replayed.Counter,
                PReport.Desync == DesyncKind::None ? "none" : "HARD",
                Same ? "identical" : "DIVERGED");
    if (!Same || PReport.Desync != DesyncKind::None)
      return 1;
  }
  std::printf("ok: the recorded schedule pins the outcome.\n");
  return 0;
}
