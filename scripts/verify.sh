#!/bin/sh
# Verifies the tree the way CI would: the tier-1 suite in the plain
# configuration, then again under AddressSanitizer and UBSan (via the
# TSR_SANITIZE CMake option). Each configuration builds into its own
# directory so incremental plain builds stay untouched.
#
# Usage: scripts/verify.sh [--fast] [--crash-matrix]
#   --fast          plain configuration only (skips the sanitizer builds).
#   --crash-matrix  run only the CrashRecovery kill-matrix tests (plain +
#                   ASan) — the crash-consistency gate, repeated to shake
#                   out timing-dependent salvage bugs.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
CRASH=0
for Arg in "$@"; do
  case "$Arg" in
  --fast) FAST=1 ;;
  --crash-matrix) CRASH=1 ;;
  *) echo "unknown option: $Arg" >&2; exit 2 ;;
  esac
done

run_config() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

# Crash matrix: fork/kill/salvage/replay under both configurations.
# --repeat hits different kill points each iteration.
run_crash_matrix() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: crash matrix ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target crash_recovery_test >/dev/null
  ctest --test-dir "$dir" --output-on-failure -R CrashRecovery \
    --repeat until-fail:3
}

if [ "$CRASH" -eq 1 ]; then
  run_crash_matrix plain ""
  [ "$FAST" -eq 0 ] && run_crash_matrix asan address
  echo "verify: crash matrix passed"
  exit 0
fi

run_config plain ""
if [ "$FAST" -eq 0 ]; then
  run_config asan address
  run_config ubsan undefined
fi
echo "verify: all configurations passed"
