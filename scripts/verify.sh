#!/bin/sh
# Verifies the tree the way CI would: the tier-1 suite in the plain
# configuration, then again under AddressSanitizer and UBSan (via the
# TSR_SANITIZE CMake option). Each configuration builds into its own
# directory so incremental plain builds stay untouched.
#
# Usage: scripts/verify.sh [--fast] [--crash-matrix] [--trace] [--chaos]
#        [--profile] [--fleet] [--tsan]
#   --fast          plain configuration only (skips the sanitizer builds).
#   --tsan          run only the lock-free commit-pipeline gate: the
#                   scheduler, shadow-memory and trace suites built with
#                   TSR_SANITIZE=thread, so the ticket/epoch fast path's
#                   atomics are checked by ThreadSanitizer rather than by
#                   code review alone.
#   --crash-matrix  run only the CrashRecovery kill-matrix tests (plain +
#                   ASan) — the crash-consistency gate, repeated to shake
#                   out timing-dependent salvage bugs.
#   --trace         run only the observability smoke: Trace* tests, the
#                   trace_timeline example end to end (record, export,
#                   replay, virtual-time diff), and `tsr-demo-dump
#                   timeline` over the recorded demo.
#   --profile       run only the causal-profiler smoke: Profile*/Telemetry
#                   tests, then `tsr-demo-dump profile` over a freshly
#                   recorded demo — run twice and byte-compared, since the
#                   offline analysis must be deterministic.
#   --fleet         run only the multi-session gate: SessionPool tests
#                   (plain + ASan), then a fleet_throughput smoke run
#                   whose JSON must report zero desyncs/deadlocks and
#                   replay_identical=true at every rung — i.e. a demo
#                   recorded inside a concurrent fleet is byte-identical
#                   to the solo recording and replays cleanly.
#   --chaos         run only the self-healing gate (plain + ASan): the
#                   seeded demo-mutation sweep and recovery/watchdog/
#                   retry suites at TSR_CHAOS_MUTANTS=120, then a CLI
#                   exit-code sweep over dd-corrupted on-disk demos
#                   (verify/repair must honour the 0/1/2 contract —
#                   never crash, never hang).
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
CRASH=0
TRACE=0
CHAOS=0
PROFILE=0
FLEET=0
TSAN=0
for Arg in "$@"; do
  case "$Arg" in
  --fast) FAST=1 ;;
  --crash-matrix) CRASH=1 ;;
  --trace) TRACE=1 ;;
  --chaos) CHAOS=1 ;;
  --profile) PROFILE=1 ;;
  --fleet) FLEET=1 ;;
  --tsan) TSAN=1 ;;
  *) echo "unknown option: $Arg" >&2; exit 2 ;;
  esac
done

run_config() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

# Crash matrix: fork/kill/salvage/replay under both configurations.
# --repeat hits different kill points each iteration.
run_crash_matrix() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: crash matrix ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target crash_recovery_test >/dev/null
  ctest --test-dir "$dir" --output-on-failure -R CrashRecovery \
    --repeat until-fail:3
}

# Trace smoke: tests, the example walkthrough, and the demo timeline
# exporter, checking the Chrome JSON actually materialises.
run_trace_smoke() {
  dir="build"
  demo="$(mktemp -d)/demo"
  echo "== trace: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target trace_test trace_timeline \
    tsr-demo-dump >/dev/null
  echo "== trace: ctest -R Trace"
  ctest --test-dir "$dir" --output-on-failure -R Trace
  echo "== trace: trace_timeline example ($demo)"
  "$dir/examples/trace_timeline" "$demo"
  echo "== trace: tsr-demo-dump timeline"
  "$dir/tools/tsr-demo-dump" timeline "$demo" "$demo.timeline.json"
  grep -q '"traceEvents"' "$demo.timeline.json" || {
    echo "timeline JSON missing traceEvents" >&2
    exit 1
  }
  for f in "$demo.record.json" "$demo.replay.json"; do
    grep -q '"traceEvents"' "$f" || {
      echo "exported trace $f missing traceEvents" >&2
      exit 1
    }
  done
  rm -rf "$(dirname "$demo")"
}

# Profile smoke: the profiler/telemetry suites, then the offline analysis
# over a real recorded demo. The offline run happens twice and the output
# is byte-compared: `tsr-demo-dump profile` reconstructs the report purely
# from the QUEUE/SIGNAL/SYSCALL streams, so two runs over the same demo
# must agree to the byte.
run_profile_smoke() {
  dir="build"
  scratch="$(mktemp -d)"
  demo="$scratch/demo"
  echo "== profile: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target profile_test trace_timeline \
    tsr-demo-dump >/dev/null
  echo "== profile: ctest -R 'Profile|Telemetry'"
  ctest --test-dir "$dir" --output-on-failure -R 'Profile|Telemetry'
  echo "== profile: recording a reference demo ($demo)"
  "$dir/examples/trace_timeline" "$demo" >/dev/null
  echo "== profile: tsr-demo-dump profile (twice, byte-compared)"
  "$dir/tools/tsr-demo-dump" profile "$demo" "$scratch/profile1.json"
  "$dir/tools/tsr-demo-dump" profile "$demo" "$scratch/profile2.json"
  grep -q '"tsr-profile-core-v1"' "$scratch/profile1.json" || {
    echo "offline profile missing tsr-profile-core-v1 schema" >&2
    exit 1
  }
  cmp "$scratch/profile1.json" "$scratch/profile2.json" || {
    echo "offline profile analysis is not deterministic" >&2
    exit 1
  }
  rm -rf "$scratch"
}

# Chaos suite: the seeded mutation sweep plus every recovery, watchdog
# and retry test, with the mutant count cranked up.
run_chaos() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: chaos suite ($dir, TSR_CHAOS_MUTANTS=120)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" \
    --target demo_integrity_test recovery_test >/dev/null
  TSR_CHAOS_MUTANTS=120 ctest --test-dir "$dir" --output-on-failure \
    -R 'DemoChaos|DemoIntegrity|Recovery|Watchdog|Retry'
}

# CLI exit-code sweep: byte-stomp copies of a real on-disk demo and hold
# `tsr-demo-dump verify`/`repair` to their documented 0/1/2 exit codes.
# Any other status (a crash is 128+signal) or a hang fails the gate.
run_chaos_cli() {
  dir="build"
  cmake -B "$dir" -S . -DTSR_SANITIZE="" >/dev/null
  cmake --build "$dir" -j "$JOBS" \
    --target trace_timeline tsr-demo-dump >/dev/null
  scratch="$(mktemp -d)"
  demo="$scratch/demo"
  echo "== chaos: recording a reference demo ($demo)"
  "$dir/examples/trace_timeline" "$demo" >/dev/null
  echo "== chaos: dd-corruption exit-code sweep"
  i=0
  while [ "$i" -lt 24 ]; do
    work="$scratch/mutant-$i"
    cp -r "$demo" "$work"
    for f in "$work"/*; do
      size="$(wc -c < "$f")"
      [ "$size" -gt 0 ] || continue
      off=$(( (i * 7919 + 13) % size ))
      printf '\377' | dd of="$f" bs=1 seek="$off" conv=notrunc 2>/dev/null
      # Every third mutant also loses a tail (torn final write).
      if [ $(( i % 3 )) -eq 0 ] && [ "$size" -gt 8 ]; then
        truncate -s $(( size - i % 7 - 1 )) "$f"
      fi
    done
    for cmd in verify repair; do
      rc=0
      timeout 60 "$dir/tools/tsr-demo-dump" "$cmd" "$work" \
        >/dev/null 2>&1 || rc=$?
      if [ "$rc" -gt 2 ]; then
        echo "chaos: tsr-demo-dump $cmd on mutant $i exited $rc" >&2
        exit 1
      fi
    done
    rm -rf "$work"
    i=$(( i + 1 ))
  done
  rm -rf "$scratch"
}

# Multi-session gate: the SessionPool suite (concurrent record/replay
# stress, registry drain, fleet-vs-solo bit-identity) in the requested
# configuration, then a fleet_throughput smoke whose JSON must show a
# fully healthy fleet.
run_fleet_tests() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: SessionPool suite ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target session_pool_test >/dev/null
  ctest --test-dir "$dir" --output-on-failure -R SessionPool
}

run_fleet_smoke() {
  dir="build"
  scratch="$(mktemp -d)"
  cmake --build "$dir" -j "$JOBS" --target fleet_throughput >/dev/null
  echo "== fleet: fleet_throughput smoke (reps=2, up to 64 sessions)"
  ( cd "$scratch" && \
    TSR_BENCH_REPS=2 TSR_BENCH_FLEET_MAX=64 \
    "$OLDPWD/$dir/bench/fleet_throughput" )
  json="$scratch/BENCH_fleet_throughput.json"
  grep -q '"replay_identical": true' "$json" || {
    echo "fleet smoke: no rung reported replay_identical=true" >&2
    exit 1
  }
  if grep -q '"replay_identical": false' "$json"; then
    echo "fleet smoke: a fleet-recorded demo was not byte-identical to" \
         "the solo recording (or failed to replay cleanly)" >&2
    exit 1
  fi
  if grep -Eq '"(hard_desyncs|deadlocks)": [1-9]' "$json"; then
    echo "fleet smoke: fleet sessions desynced or deadlocked" >&2
    exit 1
  fi
  rm -rf "$scratch"
}

# TSan gate: the suites that drive the lock-free tick commit pipeline
# (scheduler protocol, litmus schedules, shadow memory, tracing) under
# ThreadSanitizer. The pipelined fast path hands plain committer-owned
# state across threads through atomic publish/claim edges; TSan checks
# those edges mechanically on every handoff the suites exercise.
run_tsan() {
  dir="build-verify-tsan"
  echo "== tsan: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE=thread >/dev/null
  cmake --build "$dir" -j "$JOBS" \
    --target sched_test litmus_property_test trace_test >/dev/null
  echo "== tsan: ctest -R 'Sched|Litmus|Trace'"
  ctest --test-dir "$dir" --output-on-failure -R 'Sched|Litmus|Trace'
}

if [ "$TSAN" -eq 1 ]; then
  run_tsan
  echo "verify: tsan gate passed"
  exit 0
fi

if [ "$FLEET" -eq 1 ]; then
  run_fleet_tests plain ""
  [ "$FAST" -eq 0 ] && run_fleet_tests asan address
  run_fleet_smoke
  echo "verify: fleet gate passed"
  exit 0
fi

if [ "$CHAOS" -eq 1 ]; then
  run_chaos plain ""
  [ "$FAST" -eq 0 ] && run_chaos asan address
  run_chaos_cli
  echo "verify: chaos suite passed"
  exit 0
fi

if [ "$TRACE" -eq 1 ]; then
  run_trace_smoke
  echo "verify: trace smoke passed"
  exit 0
fi

if [ "$PROFILE" -eq 1 ]; then
  run_profile_smoke
  echo "verify: profile smoke passed"
  exit 0
fi

if [ "$CRASH" -eq 1 ]; then
  run_crash_matrix plain ""
  [ "$FAST" -eq 0 ] && run_crash_matrix asan address
  echo "verify: crash matrix passed"
  exit 0
fi

run_config plain ""
if [ "$FAST" -eq 0 ]; then
  run_config asan address
  run_config ubsan undefined
fi
echo "verify: all configurations passed"
