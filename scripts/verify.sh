#!/bin/sh
# Verifies the tree the way CI would: the tier-1 suite in the plain
# configuration, then again under AddressSanitizer and UBSan (via the
# TSR_SANITIZE CMake option). Each configuration builds into its own
# directory so incremental plain builds stay untouched.
#
# Usage: scripts/verify.sh [--fast]
#   --fast  plain configuration only (skips the sanitizer builds).
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

run_config() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config plain ""
if [ "$FAST" -eq 0 ]; then
  run_config asan address
  run_config ubsan undefined
fi
echo "verify: all configurations passed"
