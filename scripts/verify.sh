#!/bin/sh
# Verifies the tree the way CI would: the tier-1 suite in the plain
# configuration, then again under AddressSanitizer and UBSan (via the
# TSR_SANITIZE CMake option). Each configuration builds into its own
# directory so incremental plain builds stay untouched.
#
# Usage: scripts/verify.sh [--fast] [--crash-matrix] [--trace]
#   --fast          plain configuration only (skips the sanitizer builds).
#   --crash-matrix  run only the CrashRecovery kill-matrix tests (plain +
#                   ASan) — the crash-consistency gate, repeated to shake
#                   out timing-dependent salvage bugs.
#   --trace         run only the observability smoke: Trace* tests, the
#                   trace_timeline example end to end (record, export,
#                   replay, virtual-time diff), and `tsr-demo-dump
#                   timeline` over the recorded demo.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
CRASH=0
TRACE=0
for Arg in "$@"; do
  case "$Arg" in
  --fast) FAST=1 ;;
  --crash-matrix) CRASH=1 ;;
  --trace) TRACE=1 ;;
  *) echo "unknown option: $Arg" >&2; exit 2 ;;
  esac
done

run_config() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" >/dev/null
  echo "== $name: ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

# Crash matrix: fork/kill/salvage/replay under both configurations.
# --repeat hits different kill points each iteration.
run_crash_matrix() {
  name="$1"
  sanitize="$2"
  dir="build-verify-$name"
  [ "$name" = "plain" ] && dir="build"
  echo "== $name: crash matrix ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target crash_recovery_test >/dev/null
  ctest --test-dir "$dir" --output-on-failure -R CrashRecovery \
    --repeat until-fail:3
}

# Trace smoke: tests, the example walkthrough, and the demo timeline
# exporter, checking the Chrome JSON actually materialises.
run_trace_smoke() {
  dir="build"
  demo="$(mktemp -d)/demo"
  echo "== trace: configure + build ($dir)"
  cmake -B "$dir" -S . -DTSR_SANITIZE="" >/dev/null
  cmake --build "$dir" -j "$JOBS" --target trace_test trace_timeline \
    tsr-demo-dump >/dev/null
  echo "== trace: ctest -R Trace"
  ctest --test-dir "$dir" --output-on-failure -R Trace
  echo "== trace: trace_timeline example ($demo)"
  "$dir/examples/trace_timeline" "$demo"
  echo "== trace: tsr-demo-dump timeline"
  "$dir/tools/tsr-demo-dump" timeline "$demo" "$demo.timeline.json"
  grep -q '"traceEvents"' "$demo.timeline.json" || {
    echo "timeline JSON missing traceEvents" >&2
    exit 1
  }
  for f in "$demo.record.json" "$demo.replay.json"; do
    grep -q '"traceEvents"' "$f" || {
      echo "exported trace $f missing traceEvents" >&2
      exit 1
    }
  done
  rm -rf "$(dirname "$demo")"
}

if [ "$TRACE" -eq 1 ]; then
  run_trace_smoke
  echo "verify: trace smoke passed"
  exit 0
fi

if [ "$CRASH" -eq 1 ]; then
  run_crash_matrix plain ""
  [ "$FAST" -eq 0 ] && run_crash_matrix asan address
  echo "verify: crash matrix passed"
  exit 0
fi

run_config plain ""
if [ "$FAST" -eq 0 ]; then
  run_config asan address
  run_config ubsan undefined
fi
echo "verify: all configurations passed"
