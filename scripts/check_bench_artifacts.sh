#!/bin/sh
# Validates the committed BENCH_*.json artifacts: each benchmark that
# publishes a machine-readable result at the repo root must be present
# and carry the schema keys downstream trajectory tooling reads. Catches
# both a missing artifact (a bench stopped writing it, or it was never
# re-committed after a bench change) and a stale schema (the bench's
# JSON shape moved without regenerating the checked-in copy).
#
# Usage: scripts/check_bench_artifacts.sh [dir]
#   dir  directory holding the BENCH_*.json files (default: repo root).
#        Pointing it at a bench build directory validates freshly
#        generated output before it is copied over the committed files.
set -eu

Dir="${1:-$(dirname "$0")/..}"
Failures=0

# check <file> <key>...: the file must exist and contain every key.
check() {
  File="$Dir/$1"
  shift
  if [ ! -f "$File" ]; then
    echo "MISSING  $File" >&2
    Failures=$((Failures + 1))
    return 0
  fi
  for Key in "$@"; do
    if ! grep -q "\"$Key\"" "$File"; then
      echo "STALE    $File: missing key \"$Key\"" >&2
      Failures=$((Failures + 1))
    fi
  done
  echo "ok       $File"
}

# Every SampleStats distribution carries tail estimates alongside the
# mean (p50 duplicates the median for downstream percentile tooling).
check BENCH_record_overhead.json \
  bench workload reps policies name overhead_vs_end_of_run ticks \
  demo_bytes on_disk_bytes ticks_per_sec wall_ms p50 p95 p99

check BENCH_trace_overhead.json \
  bench workload reps modes name trace_events trace_dropped \
  overhead_vs_off ticks_per_sec wall_ms p50 p95 p99

check BENCH_profile_overhead.json \
  bench workload reps modes name segments contention_edges blocked_ticks \
  telemetry_frames overhead_vs_off ticks_per_sec wall_ms p50 p95 p99

check BENCH_sched_throughput.json \
  bench workload reps ops_per_thread configs name policy commit strategy \
  threads ticks spurious_wakeups targeted_wakeups broadcast_wakeups \
  fast_path_commits slow_path_commits fast_path_aborts \
  speedup_vs_broadcast speedup_vs_mutex ticks_per_sec wall_ms p50 p95 p99

check BENCH_recovery.json \
  bench workload reps modes name overhead_vs_strict ticks actions \
  ticks_per_sec wall_ms recovered_runs runs successes success_rate \
  p50 p95 p99

check BENCH_race_overhead.json \
  bench workload reps iters configs name backend threads plain_accesses \
  same_epoch_hits fast_path_hits speedup_vs_striped accesses_per_sec \
  wall_ms apps same_epoch_fraction litmus identical_reports p50 p95 p99

check BENCH_fleet_throughput.json \
  bench workload reps requests_per_session solo_wall_ms max_sessions \
  fleet name sessions sessions_per_sec agg_ticks_per_sec \
  per_session_overhead_vs_solo hard_desyncs deadlocks \
  demo_bit_identical_to_solo replay_identical wall_ms p50 p95 p99

if [ "$Failures" -ne 0 ]; then
  echo "bench artifacts: $Failures problem(s) — regenerate with the" \
    "bench binaries and re-commit" >&2
  exit 1
fi
echo "bench artifacts: all present with expected schemas"
